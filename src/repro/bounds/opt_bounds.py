"""Lower bounds on ``OPT_total`` — Propositions 1–3 of the paper (§3.2).

Given an item list ``R``:

* **Proposition 1**: ``OPT_total(R) ≥ d(R)`` — no bin capacity is ever
  wasted in the best case.
* **Proposition 2**: ``OPT_total(R) ≥ span(R)`` — at least one bin is in use
  whenever any item is active.
* **Proposition 3**: ``OPT_total(R) ≥ ∫ ⌈S(t)⌉ dt`` — at time ``t`` at least
  ``⌈S(t)⌉`` bins are open.  This bound dominates the other two.

These are cheap (no search), so they scale to instances where the exact
:func:`repro.algorithms.opt_total` solver does not.

All three bounds are dimension-generic: for a vector instance (paper §6)
each resource dimension independently yields a valid lower bound, so the
vector bound is the maximum over dimensions — ``max_d Σ_r s_d(r)·l(I(r))``
for Proposition 1 and ``max_d ∫ ⌈S_d(t)⌉ dt`` for Proposition 3.  The
:func:`vector_demand_lower_bound` / :func:`vector_ceil_lower_bound` helpers
expose those per-dimension forms directly on plain item sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..core.exceptions import DeadlineExceeded, SolverLimitError
from ..core.items import Item, ItemList

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..algorithms.adversary import MemoCache
    from ..algorithms.optimal import SolverStats
    from ..resilience.deadline import Deadline

__all__ = [
    "demand_lower_bound",
    "span_lower_bound",
    "ceil_size_lower_bound",
    "best_lower_bound",
    "vector_demand_lower_bound",
    "vector_ceil_lower_bound",
    "adversary_denominator",
    "resolve_denominator",
    "DenominatorInfo",
    "OptBounds",
]


def demand_lower_bound(items: ItemList) -> float:
    """Proposition 1: total time-space demand ``d(R)``.

    For vector instances this is the max per-dimension demand (each
    dimension alone constrains capacity).
    """
    return items.total_demand()


def span_lower_bound(items: ItemList) -> float:
    """Proposition 2: ``span(R)``."""
    return items.span()


def ceil_size_lower_bound(items: ItemList) -> float:
    """Proposition 3: ``∫ ⌈S(t)⌉ dt`` over the span of ``R``.

    For vector instances, the max over dimensions ``max_d ∫ ⌈S_d(t)⌉ dt``:
    dimension ``d`` alone forces ``⌈S_d(t)⌉`` open bins at time ``t``.
    """
    return max(
        items.size_profile(dim).integral_ceil() for dim in range(items.dims)
    )


def vector_demand_lower_bound(items: "ItemList | Iterable[Item]") -> float:
    """Vector analogue of Propositions 1–2 on a plain item sequence.

    ``OPT ≥ max(max_d Σ_r s_d(r)·l(I(r)), span(R))`` — the per-dimension
    demand maximum combined with the span bound.  Accepts any iterable of
    (vector) items; kept as the historical ``repro.extensions.multidim``
    entry point, now expressed through the dimension-generic core bounds.
    """
    if not isinstance(items, ItemList):
        items = ItemList(items)
    if not items:
        return 0.0
    return max(demand_lower_bound(items), span_lower_bound(items))


def vector_ceil_lower_bound(items: "ItemList | Iterable[Item]") -> float:
    """Vector analogue of Proposition 3: ``max_d ∫ ⌈S_d(t)⌉ dt``.

    Dominates :func:`vector_demand_lower_bound` (pointwise ``⌈x⌉ ≥ x`` and
    ``≥ 1`` on the support).  Accepts any iterable of (vector) items.
    """
    if not isinstance(items, ItemList):
        items = ItemList(items)
    if not items:
        return 0.0
    return ceil_size_lower_bound(items)


def best_lower_bound(items: ItemList) -> float:
    """The tightest of the three lower bounds.

    Proposition 3 dominates Propositions 1 and 2 pointwise (``⌈S(t)⌉ ≥ S(t)``
    and ``⌈S(t)⌉ ≥ 1`` wherever an item is active), so this simply evaluates
    it; the max is taken anyway as a numerical belt-and-braces.
    """
    return max(
        demand_lower_bound(items),
        span_lower_bound(items),
        ceil_size_lower_bound(items),
    )


@dataclass(frozen=True, slots=True)
class DenominatorInfo:
    """The resolved ratio denominator plus how it was obtained.

    Attributes:
        value: The denominator — exact ``OPT_total`` or the certified
            Proposition 1–3 lower bound.
        exact: True iff ``value`` is the solved ``OPT_total``.
        degraded_reason: ``None`` when exact; otherwise why the solver
            degraded to bounds: ``"deadline"`` (wall-clock budget expired),
            ``"node_budget"`` (branch-and-bound node budget exhausted),
            ``"instance_too_large"`` (above the exact-adversary size
            ceiling) or ``"vector_dims"`` (the exact adversary is
            scalar-only; vector instances always use the per-dimension
            Proposition 1–3 bounds).
    """

    value: float
    exact: bool
    degraded_reason: str | None = None


def resolve_denominator(
    items: ItemList,
    *,
    exact_opt_max_items: int = 200,
    solver_nodes: int = 500_000,
    memo: "MemoCache | None" = None,
    stats: "SolverStats | None" = None,
    deadline: "Deadline | None" = None,
) -> DenominatorInfo:
    """The ratio denominator: exact ``OPT_total`` when tractable, else bounds.

    The single policy every ratio measurement shares: solve the exact
    repacking adversary for instances up to ``exact_opt_max_items`` items,
    degrading to the certified Proposition 1–3 lower bound on size overflow,
    node-budget exhaustion or wall-clock ``deadline`` expiry.  Degradation
    makes the reported ratio an *upper bound* on the true one — the
    conservative direction for checking the paper's guarantees — and is
    always bounded: the bounds themselves are closed-form, so the total time
    past an expired deadline is the time to notice expiry, not another
    search.

    Degradations increment the ``resilience.solver.degraded`` counter
    (labelled by reason) in ``stats``'s registry when ``stats`` is given.
    """
    from ..algorithms.adversary import opt_total

    reason: str
    if items.dims > 1:
        # The exact repacking adversary is scalar-only; vector instances
        # degrade straight to the per-dimension Proposition 1-3 bounds.
        if stats is not None:
            stats.registry.counter(
                "resilience.solver.degraded", reason="vector_dims"
            ).inc()
        return DenominatorInfo(best_lower_bound(items), False, "vector_dims")
    if len(items) <= exact_opt_max_items:
        try:
            value = opt_total(
                items, max_nodes=solver_nodes, memo=memo, stats=stats, deadline=deadline
            )
            return DenominatorInfo(value, True)
        except DeadlineExceeded:
            reason = "deadline"
        except SolverLimitError:
            reason = "node_budget"
    else:
        reason = "instance_too_large"
    if stats is not None:
        stats.registry.counter("resilience.solver.degraded", reason=reason).inc()
    return DenominatorInfo(best_lower_bound(items), False, reason)


def adversary_denominator(
    items: ItemList,
    *,
    exact_opt_max_items: int = 200,
    solver_nodes: int = 500_000,
    memo: "MemoCache | None" = None,
    stats: "SolverStats | None" = None,
    deadline: "Deadline | None" = None,
) -> tuple[float, bool]:
    """Compatibility wrapper over :func:`resolve_denominator`.

    Returns:
        ``(denominator, exact)`` where ``exact`` is True iff the value is
        the solved ``OPT_total``.
    """
    info = resolve_denominator(
        items,
        exact_opt_max_items=exact_opt_max_items,
        solver_nodes=solver_nodes,
        memo=memo,
        stats=stats,
        deadline=deadline,
    )
    return info.value, info.exact


@dataclass(frozen=True, slots=True)
class OptBounds:
    """All three lower bounds of an instance, for reporting."""

    demand: float
    span: float
    ceil_size: float

    @classmethod
    def of(cls, items: ItemList) -> "OptBounds":
        return cls(
            demand=demand_lower_bound(items),
            span=span_lower_bound(items),
            ceil_size=ceil_size_lower_bound(items),
        )

    @property
    def best(self) -> float:
        return max(self.demand, self.span, self.ceil_size)
