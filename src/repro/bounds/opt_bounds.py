"""Lower bounds on ``OPT_total`` — Propositions 1–3 of the paper (§3.2).

Given an item list ``R``:

* **Proposition 1**: ``OPT_total(R) ≥ d(R)`` — no bin capacity is ever
  wasted in the best case.
* **Proposition 2**: ``OPT_total(R) ≥ span(R)`` — at least one bin is in use
  whenever any item is active.
* **Proposition 3**: ``OPT_total(R) ≥ ∫ ⌈S(t)⌉ dt`` — at time ``t`` at least
  ``⌈S(t)⌉`` bins are open.  This bound dominates the other two.

These are cheap (no search), so they scale to instances where the exact
:func:`repro.algorithms.opt_total` solver does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.exceptions import DeadlineExceeded, SolverLimitError
from ..core.items import ItemList

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..algorithms.adversary import MemoCache
    from ..algorithms.optimal import SolverStats
    from ..resilience.deadline import Deadline

__all__ = [
    "demand_lower_bound",
    "span_lower_bound",
    "ceil_size_lower_bound",
    "best_lower_bound",
    "adversary_denominator",
    "resolve_denominator",
    "DenominatorInfo",
    "OptBounds",
]


def demand_lower_bound(items: ItemList) -> float:
    """Proposition 1: total time-space demand ``d(R)``."""
    return items.total_demand()


def span_lower_bound(items: ItemList) -> float:
    """Proposition 2: ``span(R)``."""
    return items.span()


def ceil_size_lower_bound(items: ItemList) -> float:
    """Proposition 3: ``∫ ⌈S(t)⌉ dt`` over the span of ``R``."""
    return items.size_profile().integral_ceil()


def best_lower_bound(items: ItemList) -> float:
    """The tightest of the three lower bounds.

    Proposition 3 dominates Propositions 1 and 2 pointwise (``⌈S(t)⌉ ≥ S(t)``
    and ``⌈S(t)⌉ ≥ 1`` wherever an item is active), so this simply evaluates
    it; the max is taken anyway as a numerical belt-and-braces.
    """
    return max(
        demand_lower_bound(items),
        span_lower_bound(items),
        ceil_size_lower_bound(items),
    )


@dataclass(frozen=True, slots=True)
class DenominatorInfo:
    """The resolved ratio denominator plus how it was obtained.

    Attributes:
        value: The denominator — exact ``OPT_total`` or the certified
            Proposition 1–3 lower bound.
        exact: True iff ``value`` is the solved ``OPT_total``.
        degraded_reason: ``None`` when exact; otherwise why the solver
            degraded to bounds: ``"deadline"`` (wall-clock budget expired),
            ``"node_budget"`` (branch-and-bound node budget exhausted) or
            ``"instance_too_large"`` (above the exact-adversary size
            ceiling).
    """

    value: float
    exact: bool
    degraded_reason: str | None = None


def resolve_denominator(
    items: ItemList,
    *,
    exact_opt_max_items: int = 200,
    solver_nodes: int = 500_000,
    memo: "MemoCache | None" = None,
    stats: "SolverStats | None" = None,
    deadline: "Deadline | None" = None,
) -> DenominatorInfo:
    """The ratio denominator: exact ``OPT_total`` when tractable, else bounds.

    The single policy every ratio measurement shares: solve the exact
    repacking adversary for instances up to ``exact_opt_max_items`` items,
    degrading to the certified Proposition 1–3 lower bound on size overflow,
    node-budget exhaustion or wall-clock ``deadline`` expiry.  Degradation
    makes the reported ratio an *upper bound* on the true one — the
    conservative direction for checking the paper's guarantees — and is
    always bounded: the bounds themselves are closed-form, so the total time
    past an expired deadline is the time to notice expiry, not another
    search.

    Degradations increment the ``resilience.solver.degraded`` counter
    (labelled by reason) in ``stats``'s registry when ``stats`` is given.
    """
    from ..algorithms.adversary import opt_total

    reason: str
    if len(items) <= exact_opt_max_items:
        try:
            value = opt_total(
                items, max_nodes=solver_nodes, memo=memo, stats=stats, deadline=deadline
            )
            return DenominatorInfo(value, True)
        except DeadlineExceeded:
            reason = "deadline"
        except SolverLimitError:
            reason = "node_budget"
    else:
        reason = "instance_too_large"
    if stats is not None:
        stats.registry.counter("resilience.solver.degraded", reason=reason).inc()
    return DenominatorInfo(best_lower_bound(items), False, reason)


def adversary_denominator(
    items: ItemList,
    *,
    exact_opt_max_items: int = 200,
    solver_nodes: int = 500_000,
    memo: "MemoCache | None" = None,
    stats: "SolverStats | None" = None,
    deadline: "Deadline | None" = None,
) -> tuple[float, bool]:
    """Compatibility wrapper over :func:`resolve_denominator`.

    Returns:
        ``(denominator, exact)`` where ``exact`` is True iff the value is
        the solved ``OPT_total``.
    """
    info = resolve_denominator(
        items,
        exact_opt_max_items=exact_opt_max_items,
        solver_nodes=solver_nodes,
        memo=memo,
        stats=stats,
        deadline=deadline,
    )
    return info.value, info.exact


@dataclass(frozen=True, slots=True)
class OptBounds:
    """All three lower bounds of an instance, for reporting."""

    demand: float
    span: float
    ceil_size: float

    @classmethod
    def of(cls, items: ItemList) -> "OptBounds":
        return cls(
            demand=demand_lower_bound(items),
            span=span_lower_bound(items),
            ceil_size=ceil_size_lower_bound(items),
        )

    @property
    def best(self) -> float:
        return max(self.demand, self.span, self.ceil_size)
