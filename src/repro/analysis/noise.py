"""Duration-misestimation study (paper §6: "analyze how inaccurate estimates
of item durations would impact the competitiveness").

The clairvoyant strategies classify items by (predicted) departure time or
duration; when predictions err, items land in the wrong category and the
usage-time savings erode.  This module quantifies that erosion: a noisy
estimator perturbs each item's predicted duration by a multiplicative
log-normal factor of parameter σ, the :class:`~repro.simulation.Simulator`
replays the workload (placements see predictions, costs use reality), and
the usage inflation relative to the σ = 0 run is reported per algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..algorithms.base import OnlinePacker
from ..core.items import Item, ItemList
from ..simulation.simulator import Estimator, Simulator

__all__ = ["noisy_estimator", "NoisePoint", "noise_sweep"]


def noisy_estimator(sigma: float, seed: int) -> Estimator:
    """A log-normal multiplicative duration-noise estimator.

    Predicted duration = actual duration × exp(N(0, σ²)); σ = 0 reproduces
    perfect clairvoyance.  Each item's noise draw is derived from the seed
    and the item id, so the same item gets the same prediction across
    algorithms — a paired comparison.
    """
    def estimate(item: Item) -> float:
        if sigma == 0.0:
            return item.departure
        rng = np.random.default_rng((seed, item.id))
        factor = float(np.exp(rng.normal(0.0, sigma)))
        return item.arrival + item.duration * factor

    return estimate


@dataclass(frozen=True, slots=True)
class NoisePoint:
    """Usage of one algorithm at one noise level, aggregated over seeds."""

    sigma: float
    algorithm: str
    mean_usage: float
    mean_inflation: float  # usage / noise-free usage, averaged over seeds
    mean_abs_error: float  # mean |predicted - actual| departure
    n_seeds: int


def noise_sweep(
    make_packer: Callable[[], OnlinePacker],
    items: ItemList,
    sigmas: Sequence[float],
    seeds: Sequence[int],
) -> list[NoisePoint]:
    """Measure usage inflation of a packer under increasing prediction noise.

    Args:
        make_packer: Fresh-packer factory (state is reset per run anyway;
            the factory keeps parameterisation explicit).
        items: The workload (fixed across noise levels — paired design).
        sigmas: Noise levels; 0 is measured implicitly as the baseline.
        seeds: Noise seeds aggregated per level.
    """
    baseline_packer = make_packer()
    baseline = Simulator(baseline_packer).run(items).total_usage()
    algo = baseline_packer.describe()
    points = []
    for sigma in sigmas:
        usages = []
        errors = []
        for seed in seeds:
            sim = Simulator(make_packer()).run(items, noisy_estimator(sigma, seed))
            usages.append(sim.total_usage())
            errors.append(sim.mean_absolute_prediction_error())
        points.append(
            NoisePoint(
                sigma=sigma,
                algorithm=algo,
                mean_usage=float(np.mean(usages)),
                mean_inflation=float(np.mean(usages) / baseline) if baseline > 0 else 1.0,
                mean_abs_error=float(np.mean(errors)),
                n_seeds=len(seeds),
            )
        )
    return points
