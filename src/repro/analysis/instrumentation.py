"""Executable proof machinery: the paper's inner lemmas as measurements.

The approximation proofs of Theorems 1 and 4 are built from intermediate
quantities defined on a *concrete run* of the algorithm — X-periods, the
witness moments where an item failed to fit the previous bin, the three
stages of a departure category, supplier bins.  This module reconstructs
those quantities from finished packings, so the paper's unpublished-lemma
inequalities (proofs deferred to the extended version) become empirically
checkable on any instance:

* Theorem 1 (§4.1): per bin ``b_k`` the reduction ``R_k → R'_k``, the
  X-period decomposition, ``d_k``, the witness times ``t_i`` and ``d_k*``;
  the checks ``Σ l(X(r_i)) = span(R_k)``, inequality (2)
  ``d_k + d_k* > span(R_k)`` and **Lemma 1** ``d_k* ≤ 3·d(R_{k-1})``.
* Theorem 4 (§5.2): per departure category the stage boundaries
  ``t1 = t−μΔ, t2, t3 = t−Δ``, the per-stage usage split
  ``usage_A/B/C``, **Lemma 6** (average open-bin level > 1/2 throughout
  stage 2) and inequalities (3) and (4).

These power the deepest property tests in the suite: hypothesis feeds random
instances and every reconstructed inequality must hold, exactly as proved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..algorithms.classify_departure import ClassifyByDepartureFirstFit
from ..core.bins import Bin
from ..core.exceptions import ReproError
from ..core.intervals import Interval
from ..core.items import Item, ItemList
from ..core.packing import PackingResult
from ..core.stepfun import DEFAULT_TOL, StepFunction

__all__ = [
    "XPeriod",
    "Theorem1BinAnalysis",
    "theorem1_decomposition",
    "CategoryStageAnalysis",
    "theorem4_stage_decomposition",
    "ThirdStageAnalysis",
    "theorem4_third_stage",
    "DurationCategoryAnalysis",
    "theorem5_category_decomposition",
]


# ---------------------------------------------------------------------------
# Theorem 1: X-periods, witnesses, d_k and d_k*
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class XPeriod:
    """One item of the reduced set ``R'_k`` with its X-period and witness.

    Attributes:
        item: The item ``r_i``.
        period: ``X(r_i)`` — from ``r_i``'s arrival to the next reduced
            item's arrival (or its own departure, whichever is first).
        witness_time: A moment ``t_i ∈ I(r_i)`` at which the previous bin's
            level plus ``s(r_i)`` exceeds the capacity (must exist by the
            first-fit rule).
        witness_level: The previous bin's level at ``witness_time`` — the
            total size of ``W(r_i)``.
    """

    item: Item
    period: Interval
    witness_time: float
    witness_level: float


@dataclass(frozen=True, slots=True)
class Theorem1BinAnalysis:
    """The §4.1 quantities for one bin ``b_k`` (k ≥ 2 has witnesses)."""

    bin_index: int
    span_k: float  # span(R_k) == span(R'_k)
    d_k: float  # Σ s(r_i)·l(X(r_i)) over R'_k
    d_k_star: float  # Σ level(t_i)·l(X(r_i))
    demand_k: float  # d(R_k)
    demand_prev: float  # d(R_{k-1})
    x_periods: tuple[XPeriod, ...]

    def check(self, tol: float = 1e-9) -> None:
        """Assert the §4.1 inequalities for this bin.

        Raises:
            ReproError: if inequality (1), (2) or Lemma 1 fails.
        """
        if self.d_k > self.demand_k + tol:
            raise ReproError(
                f"bin {self.bin_index}: d_k={self.d_k} exceeds d(R_k)={self.demand_k}"
            )
        if not self.d_k + self.d_k_star > self.span_k - tol:
            raise ReproError(
                f"bin {self.bin_index}: inequality (2) fails: "
                f"{self.d_k} + {self.d_k_star} <= {self.span_k}"
            )
        if self.d_k_star > 3.0 * self.demand_prev + tol:
            raise ReproError(
                f"bin {self.bin_index}: Lemma 1 fails: d_k*={self.d_k_star} > "
                f"3*d(R_(k-1))={3 * self.demand_prev}"
            )


def _reduce_to_uncontained(items: Sequence[Item]) -> list[Item]:
    """The paper's ``R_k → R'_k``: drop items contained in another's interval.

    Sorting by (arrival asc, departure desc) and keeping strict departure
    records leaves items with strictly increasing arrivals *and* departures.
    """
    ordered = sorted(items, key=lambda r: (r.arrival, -r.departure, r.id))
    kept: list[Item] = []
    max_right = float("-inf")
    for r in ordered:
        if r.departure > max_right:
            kept.append(r)
            max_right = r.departure
    return kept


def _x_periods(reduced: Sequence[Item]) -> list[Interval]:
    periods = []
    for i, r in enumerate(reduced):
        if i + 1 < len(reduced):
            right = min(reduced[i + 1].arrival, r.departure)
        else:
            right = r.departure
        periods.append(Interval(r.arrival, right))
    return periods


def _find_witness(
    prev_profile: StepFunction, item: Item, tol: float
) -> tuple[float, float]:
    """Earliest ``t ∈ I(item)`` with ``level(t) + s > 1`` on ``prev_profile``.

    The profile must reflect the previous bin's committed items *at the
    moment the item was placed* — the paper's ``W(r_i)`` is defined on that
    state, and Lemma 1's upper bound on ``d_k*`` relies on it (the final
    profile would over-count items committed later).
    """
    candidates = [item.arrival]
    candidates.extend(
        t for t in prev_profile.breakpoints if item.arrival < t < item.departure
    )
    for t in candidates:
        level = prev_profile.value_at(t)
        if level + item.size > 1.0 + tol:
            return t, level
    raise ReproError(
        f"no witness moment for item {item.id} against the previous bin — "
        f"the packing was not produced by a duration-descending first-fit rule"
    )


def _placement_rank(result: PackingResult) -> dict[int, int]:
    """Item id → insertion rank under the DDFF ordering (ties: arrival, id)."""
    order = sorted(result.items, key=lambda r: (-r.duration, r.arrival, r.id))
    return {r.id: i for i, r in enumerate(order)}


def theorem1_decomposition(
    result: PackingResult, tol: float = DEFAULT_TOL
) -> list[Theorem1BinAnalysis]:
    """Reconstruct the §4.1 proof quantities from a DDFF packing.

    Args:
        result: A packing produced by
            :class:`~repro.algorithms.DurationDescendingFirstFit` (bins in
            opening order).  Any first-fit-by-descending-duration packing
            works; other packings raise when no witness exists.
        tol: Capacity tolerance used in witness detection.

    Returns:
        One analysis per bin ``b_k`` with ``k ≥ 2`` (the first bin has no
        previous bin; Theorem 1 handles it via the span bound).
    """
    bins = list(result.bins())
    rank = _placement_rank(result)
    analyses = []
    for k in range(1, len(bins)):
        b_k = bins[k]
        b_prev = bins[k - 1]
        reduced = _reduce_to_uncontained(b_k.items)
        periods = _x_periods(reduced)
        d_k = 0.0
        d_k_star = 0.0
        xps = []
        for r, period in zip(reduced, periods):
            # Previous bin's state at the moment r was placed.
            prev_profile = StepFunction()
            for q in b_prev.items:
                if rank[q.id] < rank[r.id]:
                    prev_profile.add(q.interval, q.size)
            witness_t, witness_level = _find_witness(prev_profile, r, tol)
            d_k += r.size * period.length
            d_k_star += witness_level * period.length
            xps.append(XPeriod(r, period, witness_t, witness_level))
        span_k = b_k.usage_time()
        x_total = sum(p.length for p in periods)
        if abs(x_total - span_k) > 1e-6 * max(1.0, span_k):
            raise ReproError(
                f"bin {b_k.index}: X-periods sum to {x_total}, span is {span_k}"
            )
        analyses.append(
            Theorem1BinAnalysis(
                bin_index=b_k.index,
                span_k=span_k,
                d_k=d_k,
                d_k_star=d_k_star,
                demand_k=sum(r.demand for r in b_k.items),
                demand_prev=sum(r.demand for r in b_prev.items),
                x_periods=tuple(xps),
            )
        )
    return analyses


# ---------------------------------------------------------------------------
# Theorem 4: stage decomposition and Lemma 6
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CategoryStageAnalysis:
    """The §5.2 three-stage split of one departure category.

    Attributes:
        category: The category index ``k`` (departures in
            ``(origin+(k−1)ρ, origin+kρ]``).
        t1: ``t − μΔ`` — earliest possible arrival of the category.
        t2: Opening time of the category's second bin, clamped to
            ``[t1, t3]`` (``t3`` when no second bin opens by then).
        t3: ``t − Δ``.
        t_end: ``t + ρ`` — end of the departure window.
        usage_a: Category bin usage within ``[t1, t2)`` (stage 1).
        usage_b: Within ``[t2, t3)`` (stage 2).
        usage_c: Within ``[t3, t+ρ)`` (stage 3).
        demand_b: Category time-space demand within stage 2.
        min_avg_level_stage2: Minimum over stage-2 moments (with an open
            bin) of the average open-bin level — Lemma 6 says > 1/2.
        num_bins: Bins the category opened.
    """

    category: int
    t1: float
    t2: float
    t3: float
    t_end: float
    usage_a: float
    usage_b: float
    usage_c: float
    demand_b: float
    min_avg_level_stage2: float
    num_bins: int

    def check(self, tol: float = 1e-9) -> None:
        """Assert stage-1 single-bin usage, Lemma 6 and inequality (4).

        Raises:
            ReproError: on any violation.
        """
        if self.usage_a > (self.t2 - self.t1) + tol:
            raise ReproError(
                f"category {self.category}: stage-1 usage {self.usage_a} exceeds "
                f"stage length {self.t2 - self.t1} (more than one bin open?)"
            )
        if self.min_avg_level_stage2 < 0.5 - 1e-9:
            raise ReproError(
                f"category {self.category}: Lemma 6 fails — average open-bin "
                f"level {self.min_avg_level_stage2} <= 1/2 in stage 2"
            )
        if not self.usage_b < 2.0 * self.demand_b + tol:
            raise ReproError(
                f"category {self.category}: inequality (4) fails: "
                f"usage_B={self.usage_b} >= 2*d_B={2 * self.demand_b}"
            )


def _usage_within(bins: Sequence[Bin], window: Interval | None) -> float:
    if window is None:
        return 0.0
    total = 0.0
    for b in bins:
        for iv in b.usage_intervals():
            clipped = iv.intersection(window)
            if clipped is not None:
                total += clipped.length
    return total


def theorem4_stage_decomposition(
    items: ItemList, rho: float, origin: float | None = None
) -> list[CategoryStageAnalysis]:
    """Run classify-by-departure FF and split each category into §5.2 stages.

    Args:
        items: The workload (non-empty).
        rho: The classification width ρ.
        origin: Classification origin (``None`` ⇒ first arrival, matching
            the packer's online choice).

    Returns:
        One :class:`CategoryStageAnalysis` per non-empty category.
    """
    if not items:
        return []
    packer = ClassifyByDepartureFirstFit(rho=rho, origin=origin)
    packer.pack(items)
    actual_origin = origin if origin is not None else items[0].arrival
    delta = items.min_duration()
    mu_delta = items.max_duration()
    analyses = []
    for key, bins in sorted(packer.category_bins().items()):
        k = int(key)  # departure categories are integers
        t = actual_origin + (k - 1) * rho
        t1 = t - mu_delta
        t3 = t - delta
        opening_times = sorted(b.open_time() for b in bins)
        if len(opening_times) >= 2 and opening_times[1] < t3:
            t2 = max(opening_times[1], t1)
        else:
            t2 = t3
        t_end = t + rho
        cat_items = [r for b in bins for r in b.items]
        demand_profile = StepFunction()
        for r in cat_items:
            demand_profile.add(r.interval, r.size)
        stage2 = Interval.maybe(t2, t3)
        # Lemma 6 scan: probe every event moment inside stage 2.
        min_avg = float("inf")
        if stage2 is not None:
            probe_times = {t2}
            for b in bins:
                for r in b.items:
                    if t2 <= r.arrival < t3:
                        probe_times.add(r.arrival)
            for probe in sorted(probe_times):
                open_bins = [b for b in bins if b.is_open_at(probe)]
                if open_bins:
                    avg = sum(b.level_at(probe) for b in open_bins) / len(open_bins)
                    min_avg = min(min_avg, avg)
        analyses.append(
            CategoryStageAnalysis(
                category=k,
                t1=t1,
                t2=t2,
                t3=t3,
                t_end=t_end,
                usage_a=_usage_within(bins, Interval.maybe(t1, t2)),
                usage_b=_usage_within(bins, stage2),
                usage_c=_usage_within(bins, Interval.maybe(t3, t_end)),
                demand_b=(
                    demand_profile.integral_over(stage2) if stage2 is not None else 0.0
                ),
                min_avg_level_stage2=min_avg,
                num_bins=len(bins),
            )
        )
    return analyses


# ---------------------------------------------------------------------------
# Theorem 4, third stage: left/right bin-usage split (paper §5.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ThirdStageAnalysis:
    """The §5.2 third-stage decomposition of one departure category.

    For each category bin ``b_i`` (opening order), ``I_i`` is its usage from
    ``t3`` (or its opening, if later) to its closing.  With ``E_i`` the
    latest closing time among earlier bins, ``I_i`` splits into
    ``I_i^L = [I_i^-, min(I_i^+, E_i))`` and the remainder ``I_i^R``.  The
    ``I_i^R`` are pairwise disjoint by construction, so the *right* usage is
    bounded by the stage length ``ρ + Δ`` — the part of the proof that is
    purely structural and checked here.

    Attributes:
        category: Category index ``k``.
        stage_length: ``ρ + Δ`` (the third stage's duration).
        left_usage: ``Σ l(I_i^L)``.
        right_usage: ``Σ l(I_i^R)``.
        periods: Per bin: ``(bin index, I_i, l(I_i^L), l(I_i^R))``.
    """

    category: int
    stage_length: float
    left_usage: float
    right_usage: float
    periods: tuple[tuple[int, Interval, float, float], ...]

    def check(self, tol: float = 1e-9) -> None:
        """Assert the structural third-stage facts.

        Raises:
            ReproError: if the right usage exceeds the stage length or the
                left/right split does not cover the stage usage.
        """
        if self.right_usage > self.stage_length + tol:
            raise ReproError(
                f"category {self.category}: right bin usage {self.right_usage} "
                f"exceeds stage length {self.stage_length}"
            )
        for index, period, l_left, l_right in self.periods:
            if abs((l_left + l_right) - period.length) > tol:
                raise ReproError(
                    f"category {self.category}, bin {index}: L/R split "
                    f"{l_left}+{l_right} != l(I_i)={period.length}"
                )


def theorem4_third_stage(
    items: ItemList, rho: float, origin: float | None = None
) -> list[ThirdStageAnalysis]:
    """Reconstruct the §5.2 third-stage left/right usage decomposition.

    Args:
        items: The workload (non-empty lists yield one analysis per
            non-empty category).
        rho: Classification width ρ.
        origin: Classification origin (``None`` ⇒ first arrival).
    """
    if not items:
        return []
    packer = ClassifyByDepartureFirstFit(rho=rho, origin=origin)
    packer.pack(items)
    actual_origin = origin if origin is not None else items[0].arrival
    delta = items.min_duration()
    analyses = []
    for key, bins in sorted(packer.category_bins().items()):
        k = int(key)
        t = actual_origin + (k - 1) * rho
        t3 = t - delta
        # Online bins have contiguous usage: one (open, close) period each.
        periods: list[tuple[int, Interval, float, float]] = []
        left_usage = 0.0
        right_usage = 0.0
        prev_max_close = float("-inf")
        for b in bins:  # opening order within the category
            open_t, close_t = b.open_time(), b.close_time()
            start = max(open_t, t3)
            if close_t <= start:
                prev_max_close = max(prev_max_close, close_t)
                continue
            period = Interval(start, close_t)
            e_i = prev_max_close if prev_max_close > float("-inf") else period.left
            split = min(max(e_i, period.left), period.right)
            l_left = split - period.left
            l_right = period.right - split
            left_usage += l_left
            right_usage += l_right
            periods.append((b.index, period, l_left, l_right))
            prev_max_close = max(prev_max_close, close_t)
        analyses.append(
            ThirdStageAnalysis(
                category=k,
                stage_length=rho + delta,
                left_usage=left_usage,
                right_usage=right_usage,
                periods=tuple(periods),
            )
        )
    return analyses


# ---------------------------------------------------------------------------
# Theorem 5: per-category First Fit bound (paper §5.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DurationCategoryAnalysis:
    """One duration category's §5.3 quantities.

    Theorem 5 sums, over categories ``R_i`` with per-category duration ratio
    at most α, the Tang-et-al. First Fit bound
    ``usage(R_i) ≤ (α+3)·d(R_i) + span(R_i)``.

    Attributes:
        category: Category index ``i``.
        usage: First Fit usage of the category's own bins.
        demand: ``d(R_i)``.
        span: ``span(R_i)``.
        realised_alpha: The category's actual max/min duration ratio
            (≤ α by construction).
    """

    category: int
    usage: float
    demand: float
    span: float
    realised_alpha: float

    def check(self, alpha: float, tol: float = 1e-9) -> None:
        """Assert the per-category inequality at the given α.

        Raises:
            ReproError: if the category bound or the ratio discipline fails.
        """
        if self.realised_alpha > alpha * (1 + 1e-9):
            raise ReproError(
                f"category {self.category}: realised duration ratio "
                f"{self.realised_alpha} exceeds alpha={alpha}"
            )
        bound = (alpha + 3.0) * self.demand + self.span
        if self.usage > bound + tol:
            raise ReproError(
                f"category {self.category}: usage {self.usage} exceeds "
                f"per-category bound {bound}"
            )


def theorem5_category_decomposition(
    items: ItemList, alpha: float, base: float | None = None
) -> list[DurationCategoryAnalysis]:
    """Run classify-by-duration FF and split its usage per §5.3 category.

    Args:
        items: The workload.
        alpha: Per-category duration ratio.
        base: Base duration (``None`` ⇒ first item's, the online choice).
    """
    from ..algorithms.classify_duration import ClassifyByDurationFirstFit
    from ..core.intervals import span as _span

    if not items:
        return []
    packer = ClassifyByDurationFirstFit(alpha=alpha, base=base)
    packer.pack(items)
    analyses = []
    for key, bins in sorted(packer.category_bins().items()):
        cat_items = [r for b in bins for r in b.items]
        durations = [r.duration for r in cat_items]
        analyses.append(
            DurationCategoryAnalysis(
                category=int(key),
                usage=sum(b.usage_time() for b in bins),
                demand=sum(r.demand for r in cat_items),
                span=_span(r.interval for r in cat_items),
                realised_alpha=max(durations) / min(durations),
            )
        )
    return analyses
