"""Sharded, work-stealing ratio sweeps over a shared coordinator directory.

:func:`~repro.analysis.run_sweep` fans a cell grid over one process pool on
one host.  This module scales the same grid across N *shard workers* that
coordinate through nothing but a directory — local processes today, separate
hosts sharing a filesystem tomorrow:

* the **driver** writes a ``manifest.json`` naming every cell (task specs +
  canonical keys) and the sweep settings, then spawns workers (or lets
  ``repro sweep-worker`` processes attach independently);
* **workers** lease chunks of cells from a
  :class:`~repro.resilience.LeaseBoard` — work stealing, not static
  partitioning, because B&B cell costs vary by orders of magnitude — and run
  each cell through the existing :func:`~repro.analysis.run_sweep` machinery
  (serial executor, per-cell retries, deadlines, chaos) with their **own**
  :class:`~repro.resilience.CheckpointJournal` and
  :class:`~repro.algorithms.MemoCache`;
* a worker that dies mid-chunk simply stops renewing its lease; after the
  TTL any surviving worker **steals** the chunk, skips the cells already in
  some shard's journal, and finishes the rest — no cell lost, none run twice
  except in the benign steal-overlap window, and settlement is deduplicated
  by task key at merge time;
* the **driver merges** deterministically in input task order: outcomes are
  rebuilt from the union of the shard journals, telemetry is merged cell by
  cell exactly like single-host ``run_sweep``, and per-shard memo caches
  fold into one file through :meth:`~repro.algorithms.MemoCache.save`'s
  atomic merge path.

Results are bit-identical to a single-host ``run_sweep`` over the same
tasks (the parity battery in ``tests/test_distributed.py`` gates this), and
a rerun pointed at the same coordinator directory restores completed cells
from the shard journals instead of recomputing them.  See
``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..algorithms.adversary import MemoCache
from ..core.exceptions import ReproError, ValidationError
from ..obs import TelemetryRegistry
from ..resilience import ChaosInjector, CheckpointJournal, LeaseBoard, RetryPolicy, task_key
from ..resilience.lease import _DONE_DIR, _LEASE_DIR
from .parallel import (
    WORKLOAD_GENERATORS,
    SweepOutcome,
    SweepTask,
    _outcome_from_record,
    _outcome_record,
    _task_spec,
    run_sweep,
)

__all__ = [
    "GcReport",
    "ShardCoordinator",
    "ShardWorkerReport",
    "run_shard_worker",
    "run_sharded_sweep",
]

_MANIFEST = "manifest.json"
_JOURNAL_DIR = "journals"
_MEMO_DIR = "memos"


@dataclass(frozen=True)
class _Manifest:
    """The parsed coordinator manifest: the grid plus its sweep settings."""

    tasks: tuple[SweepTask, ...]
    keys: tuple[str, ...]
    chunk_size: int
    lease_ttl: float
    retry: RetryPolicy | None
    deadline: float | None

    @property
    def n_chunks(self) -> int:
        """How many lease-able chunks the grid divides into."""
        return (len(self.tasks) + self.chunk_size - 1) // self.chunk_size

    def chunk_cells(self, chunk: int) -> range:
        """The grid-global cell indices belonging to ``chunk``."""
        start = chunk * self.chunk_size
        return range(start, min(start + self.chunk_size, len(self.tasks)))


@dataclass
class ShardWorkerReport:
    """What one worker did over its lifetime on the board.

    Attributes:
        worker: The worker's identifier.
        cells_run: Cells this worker actually computed.
        cells_skipped: Cells found already settled in some shard journal
            (driver resume or another worker's work on a stolen chunk).
        chunks_completed: Chunks whose done marker this worker won.
        chunks_stolen: Claims that superseded an expired lease.
        leases_lost: Chunks abandoned because the lease was stolen or
            settled from under this worker mid-chunk.
    """

    worker: str
    cells_run: int = 0
    cells_skipped: int = 0
    chunks_completed: int = 0
    chunks_stolen: int = 0
    leases_lost: int = 0

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON reports."""
        return dataclasses.asdict(self)


class ShardCoordinator:
    """The shared directory N shard workers coordinate a sweep through.

    Layout::

        <root>/manifest.json        task specs, keys, chunking, settings
        <root>/leases/              generation-numbered chunk leases
        <root>/done/                exactly-once chunk completion markers
        <root>/journals/<w>.ndjson  per-shard CheckpointJournal of outcomes
        <root>/memos/<w>.pkl        per-shard adversary MemoCache

    Args:
        root: The coordinator directory (created on demand).
        clock: Time source for lease expiry; injectable for tests.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self._clock = clock
        self._manifest: _Manifest | None = None

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file."""
        return self.root / _MANIFEST

    def initialize(
        self,
        tasks: Sequence[SweepTask],
        *,
        chunk_size: int = 1,
        lease_ttl: float = 30.0,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
    ) -> _Manifest:
        """Write (or verify) the manifest; idempotent for identical grids.

        Re-initialising an existing coordinator with the same tasks and
        settings is the resume path and changes nothing on disk; a
        different grid or settings raises
        :class:`~repro.core.ValidationError` — one coordinator directory
        describes exactly one sweep.
        """
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        for task in tasks:
            if task.workload not in WORKLOAD_GENERATORS:
                raise ValidationError(
                    f"unknown workload {task.workload!r}; "
                    f"available: {sorted(WORKLOAD_GENERATORS)}"
                )
        payload = {
            "version": 1,
            "chunk_size": int(chunk_size),
            "lease_ttl": float(lease_ttl),
            "retry": dataclasses.asdict(retry) if retry is not None else None,
            "deadline": deadline,
            "tasks": [_task_spec(task) for task in tasks],
        }
        if self.manifest_path.exists():
            existing = json.loads(self.manifest_path.read_text())
            if existing != json.loads(json.dumps(payload)):
                raise ValidationError(
                    f"coordinator {self.root} already holds a different sweep; "
                    "use a fresh directory (or identical tasks and settings "
                    "to resume)"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.manifest_path.with_name(f"{_MANIFEST}.tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, self.manifest_path)
        self._manifest = None
        return self.manifest()

    def manifest(self) -> _Manifest:
        """The parsed manifest (cached after first load)."""
        if self._manifest is not None:
            return self._manifest
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"coordinator {self.root} has no readable manifest: {exc}"
            ) from exc
        tasks = tuple(
            SweepTask(
                packer=spec["packer"],
                workload=spec["workload"],
                packer_kwargs=spec.get("packer_kwargs") or {},
                workload_kwargs=spec.get("workload_kwargs") or {},
                label=spec.get("label") or "",
            )
            for spec in data["tasks"]
        )
        retry_data = data.get("retry")
        self._manifest = _Manifest(
            tasks=tasks,
            keys=tuple(task_key(_task_spec(task)) for task in tasks),
            chunk_size=int(data["chunk_size"]),
            lease_ttl=float(data["lease_ttl"]),
            retry=RetryPolicy(**retry_data) if retry_data else None,
            deadline=data.get("deadline"),
        )
        return self._manifest

    # -- per-shard resources -------------------------------------------------

    def board(self) -> LeaseBoard:
        """The coordinator's :class:`~repro.resilience.LeaseBoard`."""
        return LeaseBoard(
            self.root, ttl=self.manifest().lease_ttl, clock=self._clock
        )

    def journal_path(self, worker: str) -> Path:
        """The :class:`~repro.resilience.CheckpointJournal` path of a shard."""
        return self.root / _JOURNAL_DIR / f"{worker}.ndjson"

    def memo_path(self, worker: str) -> Path:
        """The :class:`~repro.algorithms.MemoCache` path of a shard."""
        return self.root / _MEMO_DIR / f"{worker}.pkl"

    # -- merged views --------------------------------------------------------

    def settled(self) -> dict[str, dict[str, object]]:
        """Union of every shard journal, keyed by task key.

        Journals are folded in sorted filename order with last-write-wins
        inside each file, so the merge is deterministic; duplicated keys
        (benign steal overlap) carry identical measurements by construction,
        so each cell is settled exactly once regardless of which copy wins.
        """
        merged: dict[str, dict[str, object]] = {}
        journal_dir = self.root / _JOURNAL_DIR
        if not journal_dir.is_dir():
            return merged
        for path in sorted(journal_dir.glob("*.ndjson")):
            merged.update(CheckpointJournal(path).load())
        return merged

    def results(
        self, *, resumed_keys: frozenset[str] | set[str] = frozenset()
    ) -> list[SweepOutcome]:
        """Outcomes for every manifest task, in input task order.

        ``from_checkpoint`` is set only for cells whose key appears in
        ``resumed_keys`` (the driver passes the keys that were already
        settled before this run started), mirroring single-host
        ``run_sweep`` checkpoint semantics.

        Raises:
            ReproError: when any cell is still unsettled.
        """
        manifest = self.manifest()
        settled = self.settled()
        missing = [k for k in manifest.keys if k not in settled]
        if missing:
            raise ReproError(
                f"coordinator {self.root} is missing {len(missing)} of "
                f"{len(manifest.keys)} cells; are workers still running?"
            )
        outcomes = []
        for task, key in zip(manifest.tasks, manifest.keys):
            outcome = _outcome_from_record(task, settled[key])
            if key not in resumed_keys:
                outcome = dataclasses.replace(outcome, from_checkpoint=False)
            outcomes.append(outcome)
        return outcomes

    def merge_memos(self, dest: str | os.PathLike[str]) -> int:
        """Fold every shard memo into one cache file at ``dest``.

        Uses :meth:`~repro.algorithms.MemoCache.save`'s atomic, locked
        merge path, so a concurrent merge (or a still-running worker's
        save) cannot corrupt the destination.  Returns the number of
        entries in the merged file.
        """
        final = MemoCache(dest)
        memo_dir = self.root / _MEMO_DIR
        if memo_dir.is_dir():
            for path in sorted(memo_dir.glob("*.pkl")):
                final.merge_from(MemoCache(path))
        return final.save()

    def all_done(self) -> bool:
        """Whether every chunk has a done marker."""
        return self.board().all_done(self.manifest().n_chunks)

    # -- garbage collection ---------------------------------------------------

    def gc(self, *, force: bool = False, keep_manifest: bool = True) -> "GcReport":
        """Remove the working state of a **completed** sweep.

        Deletes the lease files, done markers, shard journals and shard
        memo caches — everything that only mattered while workers were
        running.  The manifest stays by default as a record of what the
        sweep was (``keep_manifest=False`` removes the whole coordinator
        directory).  Settled results must be merged (``results()`` /
        ``merge_memos()``) *before* collecting: after gc they are gone.

        Args:
            force: Collect even when cells are still unsettled — for
                abandoning a sweep, never for one you still want.
            keep_manifest: Keep ``manifest.json`` (and the directory).

        Raises:
            ReproError: when the sweep is incomplete and ``force`` is not
                set (a running worker's journal must not vanish under it).
        """
        import shutil

        try:
            manifest = self.manifest()
        except ReproError:
            if not force:
                raise
            manifest = None
        if manifest is not None and not force:
            settled = self.settled()
            missing = [k for k in manifest.keys if k not in settled]
            if missing:
                raise ReproError(
                    f"coordinator {self.root} still has {len(missing)} of "
                    f"{len(manifest.keys)} cells unsettled; finish the sweep "
                    "or pass force=True to abandon it"
                )
        removed_files = 0
        reclaimed = 0
        for sub in (_LEASE_DIR, _DONE_DIR, _JOURNAL_DIR, _MEMO_DIR):
            directory = self.root / sub
            if not directory.is_dir():
                continue
            for path in directory.rglob("*"):
                if path.is_file():
                    try:
                        reclaimed += path.stat().st_size
                        removed_files += 1
                    except OSError:  # pragma: no cover - concurrent cleanup
                        pass
            shutil.rmtree(directory, ignore_errors=True)
        if not keep_manifest:
            if self.manifest_path.exists():
                try:
                    reclaimed += self.manifest_path.stat().st_size
                    removed_files += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
            shutil.rmtree(self.root, ignore_errors=True)
            self._manifest = None
        return GcReport(
            coordinator=str(self.root),
            removed_files=removed_files,
            reclaimed_bytes=reclaimed,
            kept_manifest=keep_manifest,
        )

    def __repr__(self) -> str:
        return f"ShardCoordinator({str(self.root)!r})"


@dataclass(frozen=True)
class GcReport:
    """What :meth:`ShardCoordinator.gc` removed.

    Attributes:
        coordinator: The collected coordinator directory.
        removed_files: Lease/done/journal/memo files deleted.
        reclaimed_bytes: Total size of the deleted files.
        kept_manifest: Whether ``manifest.json`` (and the directory) remain.
    """

    coordinator: str
    removed_files: int
    reclaimed_bytes: int
    kept_manifest: bool


def run_shard_worker(
    coordinator_dir: str | os.PathLike[str],
    worker: str,
    *,
    chaos: ChaosInjector | None = None,
    poll_interval: float = 0.05,
    clock: Callable[[], float] = time.time,
    registry: TelemetryRegistry | None = None,
    wait_manifest: float = 0.0,
) -> ShardWorkerReport:
    """Drain the coordinator's board: claim, compute, journal, repeat.

    The worker loops over unclaimed chunks (stealing expired leases), runs
    each not-yet-settled cell through :func:`~repro.analysis.run_sweep`
    (serial executor, the manifest's retry/deadline settings, grid-global
    ``index_offset`` so chaos targeting and fault messages match a
    single-host sweep), appends every settled cell — errors included — to
    its own journal, and renews its lease between cells.  It returns when
    every chunk is done, which makes ``repro sweep-worker`` processes
    free to start and stop independently of the driver.

    Args:
        coordinator_dir: An initialised :class:`ShardCoordinator` root.
        worker: This worker's identifier (journal/memo filename stem).
        chaos: Optional seeded fault injector, forwarded to every cell.
        poll_interval: Sleep between scans while other workers hold all
            remaining leases.
        clock: Lease-expiry time source; injectable for tests.
        registry: Optional registry for ``distributed.worker.*`` counters.
        wait_manifest: Seconds to wait for the driver to write the
            manifest before giving up — lets ``repro sweep-worker``
            processes start ahead of the driver.
    """
    coordinator = ShardCoordinator(coordinator_dir, clock=clock)
    give_up = time.time() + wait_manifest
    while True:
        try:
            manifest = coordinator.manifest()
            break
        except ReproError:
            if time.time() >= give_up:
                raise
            time.sleep(min(0.1, max(poll_interval, 0.01)))
    board = coordinator.board()
    journal = CheckpointJournal(coordinator.journal_path(worker))
    memo_path = coordinator.memo_path(worker)
    memo_path.parent.mkdir(parents=True, exist_ok=True)
    report = ShardWorkerReport(worker=worker)
    while True:
        progress = False
        for chunk in range(manifest.n_chunks):
            if board.is_done(chunk):
                continue
            lease = board.claim(chunk, worker)
            if lease is None:
                continue
            progress = True
            if lease.generation > 0:
                report.chunks_stolen += 1
            settled = coordinator.settled()
            abandoned = False
            for cell in manifest.chunk_cells(chunk):
                key = manifest.keys[cell]
                if key in settled:
                    report.cells_skipped += 1
                    continue
                outcome = run_sweep(
                    [manifest.tasks[cell]],
                    executor="serial",
                    memo_path=str(memo_path),
                    retry=manifest.retry,
                    deadline=manifest.deadline,
                    chaos=chaos,
                    index_offset=cell,
                )[0]
                journal.append(key, _outcome_record(outcome))
                report.cells_run += 1
                if not board.renew(lease):
                    # Stolen from under us: the thief re-runs what we did
                    # not journal; what we did journal is deduplicated.
                    report.leases_lost += 1
                    abandoned = True
                    break
            if not abandoned and board.complete(
                chunk, worker, {"cells": len(manifest.chunk_cells(chunk))}
            ):
                report.chunks_completed += 1
        if board.all_done(manifest.n_chunks):
            break
        if not progress:
            time.sleep(poll_interval)
    if registry is not None:
        registry.counter("distributed.worker.cells_run").inc(report.cells_run)
        registry.counter("distributed.worker.cells_skipped").inc(report.cells_skipped)
        registry.counter("distributed.worker.chunks_completed").inc(
            report.chunks_completed
        )
        registry.counter("distributed.worker.chunks_stolen").inc(report.chunks_stolen)
        registry.counter("distributed.worker.leases_lost").inc(report.leases_lost)
    return report


def _spawn_context() -> multiprocessing.context.BaseContext:
    """The cheapest available multiprocessing context (fork where it exists)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_sharded_sweep(
    tasks: Sequence[SweepTask],
    *,
    shards: int = 2,
    coordinator_dir: str | os.PathLike[str] | None = None,
    chunk_size: int | None = None,
    lease_ttl: float = 30.0,
    memo_path: str | None = None,
    registry: TelemetryRegistry | None = None,
    retry: RetryPolicy | None = None,
    deadline: float | None = None,
    chaos: ChaosInjector | None = None,
    poll_interval: float = 0.05,
) -> list[SweepOutcome]:
    """Run a sweep across N shard workers; results in input task order.

    The drop-in sharded counterpart of :func:`~repro.analysis.run_sweep`:
    same outcomes (the parity suite gates bit-identical measurements), same
    deterministic task-order telemetry merge into ``registry``, but the
    grid is leased out chunk by chunk to ``shards`` worker processes that
    survive each other's crashes.  Pointing a second run at the same
    ``coordinator_dir`` resumes: cells already in shard journals are
    restored (``from_checkpoint=True``) instead of recomputed.

    Args:
        tasks: The experiment cells.
        shards: Worker processes to spawn (>= 1).  Additional external
            ``repro sweep-worker`` processes may attach to the same
            coordinator concurrently.
        coordinator_dir: Shared coordinator directory; ``None`` uses a
            private temporary directory (no resume).
        chunk_size: Cells per lease; default sizes chunks so each shard
            sees several claims, keeping stealing effective under skew.
        lease_ttl: Seconds before an unrenewed lease may be stolen.
        memo_path: Optional path the per-shard adversary memo caches are
            merged into after the sweep (atomic merge-on-save).
        registry: Optional driver-side registry; cell telemetry merges in
            task order plus ``distributed.*`` counters.
        retry: Per-cell :class:`~repro.resilience.RetryPolicy`, recorded in
            the manifest so external workers apply it too.
        deadline: Per-cell adversary wall-clock budget in seconds.
        chaos: Optional seeded :class:`~repro.resilience.ChaosInjector`
            forwarded to every worker (tests and failure rehearsals only).
        poll_interval: Worker idle-scan sleep.

    Raises:
        ValidationError: for unknown workloads, bad shard/chunk counts, or
            a coordinator directory holding a different sweep.
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    if not tasks:
        return []
    if chunk_size is None:
        chunk_size = max(1, len(tasks) // (shards * 8))
    tmp_dir: tempfile.TemporaryDirectory[str] | None = None
    if coordinator_dir is None:
        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        coordinator_dir = tmp_dir.name
    try:
        coordinator = ShardCoordinator(coordinator_dir)
        coordinator.initialize(
            tasks,
            chunk_size=chunk_size,
            lease_ttl=lease_ttl,
            retry=retry,
            deadline=deadline,
        )
        resumed_keys = frozenset(coordinator.settled())
        ctx = _spawn_context()
        workers = [
            ctx.Process(
                target=run_shard_worker,
                args=(str(coordinator_dir), f"shard-{k}"),
                kwargs={"chaos": chaos, "poll_interval": poll_interval},
                daemon=True,
            )
            for k in range(shards)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join()
        if not coordinator.all_done():
            # Crash recovery of last resort: every worker died (or none was
            # spawned to steal a dead worker's lease) — finish inline.
            run_shard_worker(
                str(coordinator_dir),
                "driver",
                chaos=chaos,
                poll_interval=poll_interval,
            )
        # A done marker proves its chunk ran, but a journal damaged after
        # the fact (corrupt or truncated lines are skipped on load) can
        # still lose settled records; recompute those cells inline under
        # the driver's own journal before merging.
        manifest = coordinator.manifest()
        settled_now = coordinator.settled()
        missing = [
            cell
            for cell, key in enumerate(manifest.keys)
            if key not in settled_now
        ]
        if missing:
            journal = CheckpointJournal(coordinator.journal_path("driver"))
            driver_memo = coordinator.memo_path("driver")
            driver_memo.parent.mkdir(parents=True, exist_ok=True)
            for cell in missing:
                outcome = run_sweep(
                    [manifest.tasks[cell]],
                    executor="serial",
                    memo_path=str(driver_memo),
                    retry=retry,
                    deadline=deadline,
                    chaos=chaos,
                    index_offset=cell,
                )[0]
                journal.append(manifest.keys[cell], _outcome_record(outcome))
        outcomes = coordinator.results(resumed_keys=resumed_keys)
        if memo_path is not None:
            coordinator.merge_memos(memo_path)
        if registry is not None:
            for outcome in outcomes:
                registry.merge(outcome.telemetry)
            manifest = coordinator.manifest()
            board = coordinator.board()
            registry.gauge("distributed.shards").set(shards)
            registry.counter("distributed.chunks").inc(manifest.n_chunks)
            stolen = sum(
                1
                for chunk in range(manifest.n_chunks)
                if (board.holder(chunk) or {}).get("generation", 0) > 0
            )
            if stolen:
                registry.counter("distributed.chunks_stolen").inc(stolen)
            if resumed_keys:
                resumed = sum(1 for o in outcomes if o.from_checkpoint)
                if resumed:
                    registry.counter("resilience.sweep.cells_resumed").inc(resumed)
        return outcomes
    finally:
        if tmp_dir is not None:
            tmp_dir.cleanup()
