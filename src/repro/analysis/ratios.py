"""Empirical ratio measurement: algorithm cost vs. the (bounded) optimum.

The benches need two measurements, both against the paper's adversary:

* :func:`measured_ratio` — one algorithm, one instance; denominator is the
  exact ``OPT_total`` (solved) when the instance is small enough, otherwise
  the Proposition 1–3 lower bound (making the reported ratio an *upper
  bound* on the true one, which is the conservative direction for checking
  the paper's guarantees).
* :func:`sweep_mu` — aggregate measured ratios over seeds for a μ-sweep,
  the shape of every Theorem 4/5 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..algorithms.adversary import MemoCache
from ..algorithms.base import Packer
from ..algorithms.optimal import SolverStats
from ..bounds.opt_bounds import resolve_denominator
from ..core.items import ItemList
from ..resilience.deadline import Deadline

__all__ = ["RatioMeasurement", "measured_ratio", "SweepPoint", "sweep_mu"]


@dataclass(frozen=True, slots=True)
class RatioMeasurement:
    """One ratio measurement.

    Attributes:
        usage: Algorithm's total usage time.
        denominator: ``OPT_total`` (exact) or the best lower bound.
        exact: True when the denominator is the solved ``OPT_total``.
        degraded_reason: ``None`` when exact; otherwise why the adversary
            degraded to certified bounds (``"deadline"``, ``"node_budget"``,
            ``"instance_too_large"`` or ``"vector_dims"`` — multi-resource
            instances always use the per-dimension Proposition 1–3 bounds,
            the exact adversary being scalar-only).
        ratio: ``usage / denominator``.
    """

    usage: float
    denominator: float
    exact: bool
    degraded_reason: str | None = None

    @property
    def ratio(self) -> float:
        return self.usage / self.denominator if self.denominator > 0 else 1.0


def measured_ratio(
    packer: Packer,
    items: ItemList,
    *,
    exact_opt_max_items: int = 200,
    solver_nodes: int = 500_000,
    memo: MemoCache | None = None,
    stats: SolverStats | None = None,
    deadline: Deadline | None = None,
) -> RatioMeasurement:
    """Pack ``items`` and measure the ratio against the adversary.

    Tries the exact repacking adversary first for instances up to
    ``exact_opt_max_items`` items; on size overflow, solver-budget overflow
    or wall-clock ``deadline`` expiry it degrades to the Proposition 1–3
    lower bound (the shared policy of
    :func:`repro.bounds.resolve_denominator`), so the result is always
    bounded and the measurement never runs unboundedly long.

    Args:
        packer: Algorithm under measurement.
        items: The instance.
        exact_opt_max_items: Exact-adversary size ceiling.
        solver_nodes: Per-slice node budget for the exact adversary.
        memo: Optional shared :class:`~repro.algorithms.MemoCache` so
            repeated measurements stop re-solving identical slices.
        stats: Optional :class:`~repro.algorithms.SolverStats` populated in
            place with the adversary's counters.
        deadline: Optional :class:`~repro.resilience.Deadline` bounding the
            adversary solve; expiry yields ``exact=False`` with
            ``degraded_reason="deadline"`` instead of raising.
    """
    result = packer.pack(items)
    usage = result.total_usage()
    info = resolve_denominator(
        items,
        exact_opt_max_items=exact_opt_max_items,
        solver_nodes=solver_nodes,
        memo=memo,
        stats=stats,
        deadline=deadline,
    )
    return RatioMeasurement(
        usage=usage,
        denominator=info.value,
        exact=info.exact,
        degraded_reason=info.degraded_reason,
    )


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """Aggregated ratios of one algorithm at one μ value."""

    mu: float
    algorithm: str
    mean_ratio: float
    max_ratio: float
    std_ratio: float
    n_seeds: int
    all_exact: bool


def sweep_mu(
    make_packer: Callable[[float], Packer],
    make_items: Callable[[float, int], ItemList],
    mus: Sequence[float],
    seeds: Sequence[int],
    **ratio_kwargs: object,
) -> list[SweepPoint]:
    """Measure an algorithm's ratio over a μ grid, aggregated over seeds.

    Args:
        make_packer: ``mu -> packer`` (so parameters like ρ can track μ).
        make_items: ``(mu, seed) -> workload``.
        mus: The μ grid.
        seeds: Seeds aggregated per grid point.
    """
    points = []
    for mu in mus:
        ratios = []
        exact = True
        algo = ""
        for seed in seeds:
            packer = make_packer(mu)
            algo = packer.describe()
            m = measured_ratio(packer, make_items(mu, seed), **ratio_kwargs)  # type: ignore[arg-type]
            ratios.append(m.ratio)
            exact &= m.exact
        arr = np.asarray(ratios)
        points.append(
            SweepPoint(
                mu=mu,
                algorithm=algo,
                mean_ratio=float(arr.mean()),
                max_ratio=float(arr.max()),
                std_ratio=float(arr.std()),
                n_seeds=len(seeds),
                all_exact=exact,
            )
        )
    return points
