"""Experiment machinery: ratio sweeps (single-host and sharded), tables,
the noise study.

Also re-exports :class:`~repro.engine.EngineStats` and the adversary's
:class:`~repro.algorithms.SolverStats` / :class:`~repro.algorithms.MemoCache`
so every instrumentation counter sits on one surface.
"""

from ..algorithms.adversary import MemoCache
from ..algorithms.optimal import SolverStats
from ..engine.stats import EngineStats
from .instrumentation import (
    CategoryStageAnalysis,
    DurationCategoryAnalysis,
    Theorem1BinAnalysis,
    ThirdStageAnalysis,
    XPeriod,
    theorem1_decomposition,
    theorem4_stage_decomposition,
    theorem4_third_stage,
    theorem5_category_decomposition,
)
from .distributed import (
    GcReport,
    ShardCoordinator,
    ShardWorkerReport,
    run_shard_worker,
    run_sharded_sweep,
)
from .noise import NoisePoint, noise_sweep, noisy_estimator
from .parallel import SweepOutcome, SweepTask, run_sweep
from .report import ReportData, build_report, guarantee_for, render_report, report_data
from .ratios import RatioMeasurement, SweepPoint, measured_ratio, sweep_mu
from .tables import format_cell, render_series, render_table

__all__ = [
    "EngineStats",
    "SolverStats",
    "MemoCache",
    "CategoryStageAnalysis",
    "DurationCategoryAnalysis",
    "Theorem1BinAnalysis",
    "ThirdStageAnalysis",
    "XPeriod",
    "theorem1_decomposition",
    "theorem4_stage_decomposition",
    "theorem4_third_stage",
    "theorem5_category_decomposition",
    "NoisePoint",
    "noise_sweep",
    "noisy_estimator",
    "SweepOutcome",
    "SweepTask",
    "run_sweep",
    "GcReport",
    "ShardCoordinator",
    "ShardWorkerReport",
    "run_shard_worker",
    "run_sharded_sweep",
    "ReportData",
    "report_data",
    "render_report",
    "build_report",
    "guarantee_for",
    "RatioMeasurement",
    "SweepPoint",
    "measured_ratio",
    "sweep_mu",
    "format_cell",
    "render_series",
    "render_table",
]
