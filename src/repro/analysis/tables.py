"""Plain-text tables and series rendering for bench output.

Every bench prints its rows through :func:`render_table` so the output that
lands in ``bench_output.txt`` (and EXPERIMENTS.md) has one consistent,
diff-friendly format.  No third-party tabulation dependency is used.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_cell", "render_table", "render_series"]


def format_cell(value: object, precision: int = 3) -> str:
    """Render one table cell: floats to fixed precision, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Args:
        rows: Mapping rows; missing keys render as '-'.
        columns: Column order; defaults to the first row's key order.
        precision: Decimal places for floats.
        title: Optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[format_cell(row.get(c), precision) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cols)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render aligned x/y series (e.g. Figure 8's curves) as a table.

    Args:
        x_label: Name of the x column.
        x_values: Shared x grid.
        series: Mapping from series name to y values (same length as x).
        precision: Decimal places.
        title: Optional heading.
    """
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, ys in series.items():
            row[name] = ys[i]
        rows.append(row)
    return render_table(rows, [x_label, *series.keys()], precision=precision, title=title)
