"""One-shot experiment reports: workload → bounds → algorithms → verdict.

:func:`build_report` turns an :class:`~repro.core.ItemList` into a complete
plain-text report: workload statistics, the Proposition 1–3 lower bounds
(and the exact adversary when affordable), a ranked comparison of the
requested algorithms with theorem guarantees where applicable, the demand
profile and the winner's Gantt chart.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms.base import Packer, get_packer
from ..algorithms.adversary import opt_total
from ..bounds.competitive import (
    classify_departure_ratio,
    classify_duration_ratio,
    ddff_approximation_ratio,
    dual_coloring_approximation_ratio,
    first_fit_ratio,
    next_fit_ratio,
)
from ..core.exceptions import SolverLimitError
from ..core.items import ItemList
from ..viz.gantt import render_gantt, render_profile
from .tables import render_table

__all__ = ["build_report", "guarantee_for"]

DEFAULT_ALGORITHMS = (
    "first-fit",
    "best-fit",
    "next-fit",
    "usage-aware-fit",
    "duration-descending-first-fit",
    "dual-coloring-merged",
)


def guarantee_for(packer: Packer, items: ItemList) -> float | None:
    """The proved worst-case ratio of ``packer`` at this workload's μ.

    Returns ``None`` for algorithms without a guarantee (Best Fit and the
    heuristics) or when μ is undefined (empty list).
    """
    if not items:
        return None
    mu = items.mu()
    name = packer.name
    if name == "first-fit":
        return first_fit_ratio(mu)
    if name == "next-fit":
        return next_fit_ratio(mu)
    if name == "duration-descending-first-fit":
        return ddff_approximation_ratio()
    if name in ("dual-coloring", "dual-coloring-merged"):
        return dual_coloring_approximation_ratio()
    if name == "classify-departure":
        rho = getattr(packer, "rho", None)
        if rho:
            return classify_departure_ratio(mu, items.min_duration(), rho)
    if name == "classify-duration":
        alpha = getattr(packer, "alpha", None)
        if alpha:
            return classify_duration_ratio(mu, alpha)
    return None


def build_report(
    items: ItemList,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    title: str = "workload report",
    exact_opt_max_items: int = 150,
    width: int = 72,
    include_gantt: bool = True,
    packer_kwargs: dict[str, dict[str, object]] | None = None,
) -> str:
    """Build the full plain-text report for one workload.

    Args:
        items: The workload.
        algorithms: Registered packer names to compare.
        title: Report heading.
        exact_opt_max_items: Size cap for solving the exact adversary.
        width: Chart width in characters.
        include_gantt: Append the best algorithm's Gantt chart.
        packer_kwargs: Optional per-name constructor arguments.
    """
    packer_kwargs = packer_kwargs or {}
    lines = [f"=== {title} ===", ""]
    if not items:
        lines.append("(empty workload)")
        return "\n".join(lines)

    lines.append(
        f"{len(items)} items | span {items.span():.2f} | demand "
        f"{items.total_demand():.2f} | mu {items.mu():.2f} | peak demand "
        f"{items.max_concurrent_size():.2f}"
    )
    from ..bounds.opt_bounds import OptBounds

    bounds = OptBounds.of(items)
    opt: float | None = None
    if len(items) <= exact_opt_max_items:
        try:
            opt = opt_total(items, max_nodes=300_000)
        except SolverLimitError:
            opt = None
    denom = opt if opt is not None else bounds.best
    denom_label = "OPT_total (exact)" if opt is not None else "Prop-3 lower bound"
    lines.append(
        f"bounds: d(R)={bounds.demand:.2f}  span={bounds.span:.2f}  "
        f"ceil-integral={bounds.ceil_size:.2f}"
        + (f"  OPT_total={opt:.2f}" if opt is not None else "")
    )
    lines.append("")

    rows = []
    results = {}
    for name in algorithms:
        packer = get_packer(name, **packer_kwargs.get(name, {}))
        result = packer.pack(items)
        result.validate()
        results[name] = result
        rows.append(
            {
                "algorithm": packer.describe(),
                "bins": result.num_bins,
                "usage": result.total_usage(),
                f"ratio vs {denom_label}": result.total_usage() / denom
                if denom > 0
                else 1.0,
                "guarantee": guarantee_for(packer, items),
            }
        )
    rows.sort(key=lambda r: r["usage"])  # type: ignore[arg-type,return-value]
    lines.append(render_table(rows, title="algorithms (best first)"))
    lines.append("")
    lines.append("demand profile S(t):")
    lines.append(render_profile(items.size_profile(), width=width, height=8))
    if include_gantt:
        best_name = min(results, key=lambda n: results[n].total_usage())
        lines.append("")
        lines.append(f"packing by the winner ({results[best_name].algorithm}):")
        lines.append(render_gantt(results[best_name], width=width))
    return "\n".join(lines)
