"""One-shot experiment reports: workload → bounds → algorithms → verdict.

:func:`report_data` turns an :class:`~repro.core.ItemList` into a
:class:`ReportData`: a JSON-ready structured payload (workload statistics,
the Proposition 1–3 lower bounds and the exact adversary when affordable, a
ranked comparison of the requested algorithms with theorem guarantees where
applicable) plus the computed packings.  :func:`render_report` renders that
data as the classic plain-text report (tables, demand profile and the
winner's Gantt chart), and :func:`build_report` is the one-call
compose-and-render wrapper the CLI exposes as ``python -m repro report``;
``report --json`` emits the payload instead of the rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..algorithms.base import Packer, get_packer
from ..algorithms.adversary import opt_total
from ..bounds.competitive import (
    classify_departure_ratio,
    classify_duration_ratio,
    ddff_approximation_ratio,
    dual_coloring_approximation_ratio,
    first_fit_ratio,
    next_fit_ratio,
)
from ..core.exceptions import SolverLimitError
from ..core.items import ItemList
from ..core.packing import PackingResult
from ..obs import TelemetryRegistry
from ..viz.gantt import render_gantt, render_profile
from .tables import render_table

__all__ = ["ReportData", "report_data", "render_report", "build_report", "guarantee_for"]

DEFAULT_ALGORITHMS = (
    "first-fit",
    "best-fit",
    "next-fit",
    "usage-aware-fit",
    "duration-descending-first-fit",
    "dual-coloring-merged",
)


def guarantee_for(packer: Packer, items: ItemList) -> float | None:
    """The proved worst-case ratio of ``packer`` at this workload's μ.

    Returns ``None`` for algorithms without a guarantee (Best Fit and the
    heuristics) or when μ is undefined (empty list).
    """
    if not items:
        return None
    mu = items.mu()
    name = packer.name
    if name == "first-fit":
        return first_fit_ratio(mu)
    if name == "next-fit":
        return next_fit_ratio(mu)
    if name == "duration-descending-first-fit":
        return ddff_approximation_ratio()
    if name in ("dual-coloring", "dual-coloring-merged"):
        return dual_coloring_approximation_ratio()
    if name == "classify-departure":
        rho = getattr(packer, "rho", None)
        if rho:
            return classify_departure_ratio(mu, items.min_duration(), rho)
    if name == "classify-duration":
        alpha = getattr(packer, "alpha", None)
        if alpha:
            return classify_duration_ratio(mu, alpha)
    return None


@dataclass(frozen=True)
class ReportData:
    """Everything one report computed, in both structured and reusable form.

    Attributes:
        title: The report heading.
        items: The workload the report covers.
        payload: A JSON-serialisable dict — workload stats, the bounds block
            (including the ratio denominator and its label) and the ranked
            algorithm rows under **stable** keys (``algorithm`` / ``bins`` /
            ``usage`` / ``ratio`` / ``guarantee``), plus the ``winner``.
        results: The validated :class:`~repro.core.PackingResult` per
            requested algorithm name, in request order.
    """

    title: str
    items: ItemList
    payload: dict[str, object]
    results: dict[str, PackingResult] = field(default_factory=dict)

    @property
    def denominator_label(self) -> str:
        """Which denominator the ratio column divides by (display label)."""
        bounds = self.payload.get("bounds")
        return str(bounds["denominator_label"]) if isinstance(bounds, dict) else ""


def report_data(
    items: ItemList,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    title: str = "workload report",
    exact_opt_max_items: int = 150,
    packer_kwargs: Mapping[str, dict[str, object]] | None = None,
    registry: TelemetryRegistry | None = None,
) -> ReportData:
    """Compute one workload's full report content (no rendering).

    Args:
        items: The workload.
        algorithms: Registered packer names to compare.
        title: Report heading.
        exact_opt_max_items: Size cap for solving the exact adversary.
        packer_kwargs: Optional per-name constructor arguments.
        registry: Optional :class:`~repro.obs.TelemetryRegistry` the report
            records summary gauges in (``report.algorithms``,
            ``report.denominator``, ``report.best_usage``, ``report.builds``).
    """
    packer_kwargs = packer_kwargs or {}
    if not items:
        payload: dict[str, object] = {
            "title": title,
            "workload": {"items": 0},
            "algorithms": [],
        }
        return ReportData(title=title, items=items, payload=payload)

    from ..bounds.opt_bounds import OptBounds

    bounds = OptBounds.of(items)
    opt: float | None = None
    if len(items) <= exact_opt_max_items:
        try:
            opt = opt_total(items, max_nodes=300_000)
        except SolverLimitError:
            opt = None
    denom = opt if opt is not None else bounds.best
    denom_label = "OPT_total (exact)" if opt is not None else "Prop-3 lower bound"

    rows: list[dict[str, object]] = []
    results: dict[str, PackingResult] = {}
    for name in algorithms:
        packer = get_packer(name, **packer_kwargs.get(name, {}))
        result = packer.pack(items)
        result.validate()
        results[name] = result
        rows.append(
            {
                "algorithm": packer.describe(),
                "bins": result.num_bins,
                "usage": result.total_usage(),
                "ratio": result.total_usage() / denom if denom > 0 else 1.0,
                "guarantee": guarantee_for(packer, items),
            }
        )
    rows.sort(key=lambda r: r["usage"])  # type: ignore[arg-type,return-value]
    winner = min(results, key=lambda n: results[n].total_usage()) if results else None

    payload = {
        "title": title,
        "workload": {
            "items": len(items),
            "span": items.span(),
            "demand": items.total_demand(),
            "mu": items.mu(),
            "peak_demand": items.max_concurrent_size(),
        },
        "bounds": {
            "demand": bounds.demand,
            "span": bounds.span,
            "ceil_integral": bounds.ceil_size,
            "opt_total": opt,
            "denominator": denom,
            "denominator_label": denom_label,
        },
        "algorithms": rows,
        "winner": results[winner].algorithm if winner is not None else None,
    }
    if registry is not None:
        registry.counter("report.builds").inc()
        registry.gauge("report.algorithms").set(len(rows))
        registry.gauge("report.denominator").set(denom)
        if rows:
            registry.gauge("report.best_usage").set(float(rows[0]["usage"]))  # type: ignore[arg-type]
    return ReportData(title=title, items=items, payload=payload, results=results)


def render_report(
    data: ReportData,
    *,
    width: int = 72,
    include_gantt: bool = True,
) -> str:
    """Render computed report content as the classic plain-text report."""
    lines = [f"=== {data.title} ===", ""]
    items = data.items
    if not items:
        lines.append("(empty workload)")
        return "\n".join(lines)

    workload = data.payload["workload"]
    bounds = data.payload["bounds"]
    lines.append(
        f"{workload['items']} items | span {workload['span']:.2f} | demand "  # type: ignore[index]
        f"{workload['demand']:.2f} | mu {workload['mu']:.2f} | peak demand "  # type: ignore[index]
        f"{workload['peak_demand']:.2f}"  # type: ignore[index]
    )
    opt = bounds["opt_total"]  # type: ignore[index]
    lines.append(
        f"bounds: d(R)={bounds['demand']:.2f}  span={bounds['span']:.2f}  "  # type: ignore[index]
        f"ceil-integral={bounds['ceil_integral']:.2f}"  # type: ignore[index]
        + (f"  OPT_total={opt:.2f}" if opt is not None else "")
    )
    lines.append("")

    denom_label = data.denominator_label
    display_rows = [
        {
            "algorithm": row["algorithm"],
            "bins": row["bins"],
            "usage": row["usage"],
            f"ratio vs {denom_label}": row["ratio"],
            "guarantee": row["guarantee"],
        }
        for row in data.payload["algorithms"]  # type: ignore[union-attr]
    ]
    lines.append(render_table(display_rows, title="algorithms (best first)"))
    lines.append("")
    lines.append("demand profile S(t):")
    lines.append(render_profile(items.size_profile(), width=width, height=8))
    if include_gantt and data.results:
        best_name = min(data.results, key=lambda n: data.results[n].total_usage())
        lines.append("")
        lines.append(f"packing by the winner ({data.results[best_name].algorithm}):")
        lines.append(render_gantt(data.results[best_name], width=width))
    return "\n".join(lines)


def build_report(
    items: ItemList,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    title: str = "workload report",
    exact_opt_max_items: int = 150,
    width: int = 72,
    include_gantt: bool = True,
    packer_kwargs: dict[str, dict[str, object]] | None = None,
    registry: TelemetryRegistry | None = None,
) -> str:
    """Build the full plain-text report for one workload.

    Compose-and-render convenience over :func:`report_data` and
    :func:`render_report`; the output text is unchanged from before the
    structured split.

    Args:
        items: The workload.
        algorithms: Registered packer names to compare.
        title: Report heading.
        exact_opt_max_items: Size cap for solving the exact adversary.
        width: Chart width in characters.
        include_gantt: Append the best algorithm's Gantt chart.
        packer_kwargs: Optional per-name constructor arguments.
        registry: Optional registry for the report's summary gauges.
    """
    data = report_data(
        items,
        algorithms,
        title=title,
        exact_opt_max_items=exact_opt_max_items,
        packer_kwargs=packer_kwargs,
        registry=registry,
    )
    return render_report(data, width=width, include_gantt=include_gantt)
