"""Parallel experiment execution over seed/parameter grids, fault-tolerant.

Ratio sweeps are embarrassingly parallel: each (algorithm, workload, seed)
cell is independent, and the exact ``opt_total`` denominator dominates the
cell's cost.  This module fans cells out over a ``ProcessPoolExecutor``
(bypassing the GIL — the work is pure Python/numpy compute), following the
HPC guides' guidance to parallelise at the outermost independent loop.

Partial failure is first-class, not fatal:

* a worker exception (or a ``BrokenProcessPool`` taking the whole pool
  down) **isolates** to its cell — the sweep completes and the cell
  surfaces as a :class:`SweepOutcome` with its ``error`` field set;
* failed cells are **retried** per the sweep's
  :class:`~repro.resilience.RetryPolicy` (exponential backoff,
  deterministic jitter), in a fresh pool each round so a broken pool never
  poisons the retry;
* a :class:`~repro.resilience.CheckpointJournal` (``checkpoint=``) records
  each completed cell as it finishes, so an interrupted sweep **resumes**
  its completed cells on rerun with bit-identical results;
* a per-cell wall-clock ``deadline`` bounds the exact adversary, degrading
  to certified bounds (``exact=False``) instead of running unbounded.

Tasks are plain picklable dataclasses naming registered packers and workload
generators, so worker processes can reconstruct everything from the spec —
no closures cross the process boundary.  Retry, resume and failure events
increment ``resilience.sweep.*`` telemetry cells in the driver registry.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..algorithms.adversary import MemoCache
from ..algorithms.base import get_packer
from ..algorithms.optimal import SolverStats
from ..core.exceptions import ValidationError
from ..obs import TelemetryRegistry, TelemetrySnapshot, enabled as _telemetry_enabled
from ..resilience import ChaosInjector, CheckpointJournal, RetryPolicy, task_key
from ..resilience.deadline import Deadline
from ..workloads import (
    bounded_mu,
    bursty,
    cluster_tasks,
    gaming_sessions,
    poisson_exponential,
    trace_workload,
    uniform_random,
    vector_uniform,
)
from .ratios import measured_ratio

__all__ = ["SweepTask", "SweepOutcome", "run_sweep", "WORKLOAD_GENERATORS"]

#: Workload generators addressable by name from task specs.
WORKLOAD_GENERATORS = {
    "uniform": uniform_random,
    "poisson": poisson_exponential,
    "bounded-mu": bounded_mu,
    "bursty": bursty,
    "gaming": gaming_sessions,
    "cluster": cluster_tasks,
    "vector": vector_uniform,
    "trace": trace_workload,
}


@dataclass(frozen=True)
class SweepTask:
    """One experiment cell.

    Attributes:
        packer: Registered packer name.
        packer_kwargs: Constructor arguments.
        workload: Generator name from :data:`WORKLOAD_GENERATORS`.
        workload_kwargs: Generator arguments **including** ``seed`` (and the
            leading count argument as ``n`` where applicable).
        label: Free-form tag copied into the outcome.
    """

    packer: str
    workload: str
    packer_kwargs: Mapping[str, object] = field(default_factory=dict)
    workload_kwargs: Mapping[str, object] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one cell: the measured ratio plus identifying fields.

    ``solver`` carries the cell's adversary counters
    (:class:`~repro.algorithms.SolverStats`): nodes, prunes, memo and
    warm-start hits — merge them across outcomes for a sweep-level view.
    ``telemetry`` is the worker's full
    :class:`~repro.obs.TelemetrySnapshot` (the solver counters plus the
    cell's spans), ready to :meth:`~repro.obs.TelemetryRegistry.merge` into
    a driver-side registry.

    Attributes:
        error: ``None`` on success; otherwise ``"ExcType: message"`` for a
            cell that exhausted its retries (``usage``/``denominator``/
            ``ratio`` are 0.0 and ``exact`` False in that case).
        attempts: Attempts consumed, including the successful one.
        from_checkpoint: True when the cell was restored from a
            :class:`~repro.resilience.CheckpointJournal` instead of run.
        degraded_reason: Set when the adversary degraded to certified
            bounds (``"deadline"``, ``"node_budget"``,
            ``"instance_too_large"``, ``"vector_dims"``); ``None`` when
            exact.
    """

    task: SweepTask
    usage: float
    denominator: float
    ratio: float
    exact: bool
    solver: SolverStats = field(default_factory=SolverStats, compare=False)
    telemetry: TelemetrySnapshot = field(
        default_factory=TelemetrySnapshot, compare=False
    )
    error: str | None = None
    attempts: int = 1
    from_checkpoint: bool = False
    degraded_reason: str | None = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a measurement (``error`` is None)."""
        return self.error is None


def _run_one(
    task: SweepTask,
    index: int = 0,
    attempt: int = 0,
    memo_path: str | None = None,
    chaos: ChaosInjector | None = None,
    deadline_s: float | None = None,
) -> SweepOutcome:
    """Worker entry point (module-level for pickling)."""
    if chaos is not None and chaos.crashes(index, attempt):
        from ..resilience.chaos import InjectedFault

        raise InjectedFault(f"chaos: injected crash (cell {index}, attempt {attempt})")
    registry = TelemetryRegistry()
    generator = WORKLOAD_GENERATORS[task.workload]
    kwargs = dict(task.workload_kwargs)
    n = kwargs.pop("n", None)
    packer = get_packer(task.packer, **dict(task.packer_kwargs))
    stats = SolverStats(registry=registry)
    memo = MemoCache(memo_path, registry=registry) if memo_path is not None else None
    deadline = Deadline.after(deadline_s) if deadline_s is not None else None
    if chaos is not None and chaos.solver_stall > 0:
        # The stall burns into the already-started deadline, exactly like a
        # wedged solver would; degradation must still answer in bounded time.
        time.sleep(chaos.solver_stall)
    timed = _telemetry_enabled()
    t0 = time.perf_counter() if timed else 0.0
    with registry.span("sweep.cell"):
        items = generator(n, **kwargs) if n is not None else generator(**kwargs)
        m = measured_ratio(packer, items, memo=memo, stats=stats, deadline=deadline)
    if timed:
        registry.histogram("sweep.cell_latency").observe(time.perf_counter() - t0)
    if memo is not None:
        memo.save()
    registry.counter("sweep.cells").inc()
    return SweepOutcome(
        task=task,
        usage=m.usage,
        denominator=m.denominator,
        ratio=m.ratio,
        exact=m.exact,
        solver=stats,
        telemetry=registry.snapshot(),
        attempts=attempt + 1,
        degraded_reason=m.degraded_reason,
    )


# ---------------------------------------------------------------------------
# Checkpoint (de)serialisation
# ---------------------------------------------------------------------------


def _task_spec(task: SweepTask) -> dict[str, object]:
    """The JSON-safe identity of a task, hashed into its checkpoint key."""
    return {
        "packer": task.packer,
        "packer_kwargs": dict(task.packer_kwargs),
        "workload": task.workload,
        "workload_kwargs": dict(task.workload_kwargs),
        "label": task.label,
    }


def _outcome_record(outcome: SweepOutcome) -> dict[str, object]:
    """A settled cell as a JSON-safe journal record (floats via ``repr``).

    ``error`` is recorded so sharded sweeps can journal cells that exhausted
    their retries; ``run_sweep`` itself only ever journals successes.
    """
    return {
        "label": outcome.task.label,
        "usage": outcome.usage,
        "denominator": outcome.denominator,
        "ratio": outcome.ratio,
        "exact": outcome.exact,
        "degraded_reason": outcome.degraded_reason,
        "error": outcome.error,
        "attempts": outcome.attempts,
        "solver": outcome.solver.as_dict(),
        "telemetry": outcome.telemetry.as_dict(),
    }


def _outcome_from_record(task: SweepTask, record: Mapping[str, object]) -> SweepOutcome:
    """Rebuild a checkpointed cell; inverse of :func:`_outcome_record`."""
    solver_data = record.get("solver")
    telemetry_data = record.get("telemetry")
    return SweepOutcome(
        task=task,
        usage=float(record["usage"]),  # type: ignore[arg-type]
        denominator=float(record["denominator"]),  # type: ignore[arg-type]
        ratio=float(record["ratio"]),  # type: ignore[arg-type]
        exact=bool(record["exact"]),
        solver=(
            SolverStats.from_dict(solver_data)  # type: ignore[arg-type]
            if isinstance(solver_data, Mapping)
            else SolverStats()
        ),
        telemetry=(
            TelemetrySnapshot.from_dict(telemetry_data)  # type: ignore[arg-type]
            if isinstance(telemetry_data, Mapping)
            else TelemetrySnapshot()
        ),
        error=record.get("error"),  # type: ignore[arg-type]
        attempts=int(record.get("attempts") or 1),  # type: ignore[arg-type]
        from_checkpoint=True,
        degraded_reason=record.get("degraded_reason"),  # type: ignore[arg-type]
    )


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    max_workers: int | None = None,
    executor: str = "process",
    memo_path: str | None = None,
    registry: TelemetryRegistry | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: str | None = None,
    deadline: float | None = None,
    chaos: ChaosInjector | None = None,
    index_offset: int = 0,
) -> list[SweepOutcome]:
    """Execute tasks, in parallel by default; order follows the input.

    Outcomes are always returned (and merged) in **input task order**, not
    completion order, so sweep reports and ``"last"``-aggregated gauges are
    deterministic regardless of worker scheduling.

    Failure semantics: a cell whose worker raises (or whose process pool
    breaks) is retried per ``retry``; a cell that exhausts its retries is
    returned as an error outcome (:attr:`SweepOutcome.error` set) instead of
    aborting the sweep.  Each retry round runs in a **fresh** pool, so even
    a ``BrokenProcessPool`` only costs the round's unfinished cells one
    extra attempt.

    Args:
        tasks: The experiment cells.
        max_workers: Worker count (``None`` = executor default).
        executor: ``"process"`` (default; true parallelism),
            ``"thread"`` (useful under debuggers), or ``"serial"``.
        memo_path: Optional path of a disk-backed adversary
            :class:`~repro.algorithms.MemoCache` shared by every cell: each
            worker loads it before measuring and merge-saves after, so
            repeated runs (and cells sharing slices) stop recomputing
            identical bin packing instances.
        registry: Optional driver-side :class:`~repro.obs.TelemetryRegistry`
            every cell's telemetry snapshot is merged into (in task order),
            plus the driver's ``resilience.sweep.*`` counters.
        retry: :class:`~repro.resilience.RetryPolicy` for failed cells;
            ``None`` means no retries (crash isolation still applies).
        checkpoint: Optional path of an NDJSON
            :class:`~repro.resilience.CheckpointJournal`: completed cells
            are appended as they finish, and cells already in the journal
            are restored instead of rerun (``from_checkpoint=True``).
        deadline: Optional per-cell wall-clock budget in seconds for the
            exact adversary; on expiry the cell degrades to certified
            bounds (``exact=False``, ``degraded_reason="deadline"``).
        chaos: Optional seeded :class:`~repro.resilience.ChaosInjector`
            (fault-injection tests and failure rehearsals only).
        index_offset: Added to each task's position when deriving its cell
            index (chaos targeting, injected-fault messages).  Sharded
            sweeps pass the cell's grid-global index here so a shard
            running a sub-range behaves — and fails — exactly like the
            same cells in a single-host sweep.

    Raises:
        ValidationError: for unknown workload names or executor kinds.
    """
    for task in tasks:
        if task.workload not in WORKLOAD_GENERATORS:
            raise ValidationError(
                f"unknown workload {task.workload!r}; "
                f"available: {sorted(WORKLOAD_GENERATORS)}"
            )
    if executor not in ("serial", "thread", "process"):
        raise ValidationError(f"unknown executor {executor!r}")
    retry = RetryPolicy() if retry is None else retry

    journal = CheckpointJournal(checkpoint) if checkpoint else None
    keys: list[str] = []
    completed: dict[int, SweepOutcome] = {}
    resumed = checkpointed = crashes = retried = failed_cells = 0
    if journal is not None:
        saved = journal.load()
        keys = [task_key(_task_spec(task)) for task in tasks]
        for i, task in enumerate(tasks):
            record = saved.get(keys[i])
            if record is not None:
                completed[i] = _outcome_from_record(task, record)
                resumed += 1

    def record_success(i: int, outcome: SweepOutcome) -> None:
        nonlocal checkpointed
        completed[i] = outcome
        if journal is not None:
            # Appended as cells finish (not at sweep end), so a killed run
            # keeps everything completed so far.
            journal.append(keys[i], _outcome_record(outcome))
            checkpointed += 1

    pending = [i for i in range(len(tasks)) if i not in completed]
    attempt = 0
    while pending:
        if attempt > 0:
            delay = retry.delay(attempt - 1, key=f"sweep-round-{attempt}")
            if delay > 0:
                time.sleep(delay)
        failures: list[tuple[int, str]] = []
        if executor == "serial":
            for i in pending:
                try:
                    outcome = _run_one(
                        tasks[i], index_offset + i, attempt, memo_path, chaos, deadline
                    )
                except Exception as exc:  # noqa: BLE001 - crash isolation
                    failures.append((i, f"{type(exc).__name__}: {exc}"))
                else:
                    record_success(i, outcome)
        else:
            pool_cls: type[Executor] = (
                ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
            )
            # A fresh pool per round: a BrokenProcessPool marks the round's
            # unfinished futures as failures and dies with the round.
            with pool_cls(max_workers=max_workers) as pool:
                index_of: dict[Future[SweepOutcome], int] = {
                    pool.submit(
                        _run_one,
                        tasks[i],
                        index_offset + i,
                        attempt,
                        memo_path,
                        chaos,
                        deadline,
                    ): i
                    for i in pending
                }
                for future in as_completed(index_of):
                    i = index_of[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:  # noqa: BLE001 - crash isolation
                        failures.append((i, f"{type(exc).__name__}: {exc}"))
                    else:
                        record_success(i, outcome)
        if not failures:
            break
        crashes += len(failures)
        if attempt >= retry.max_retries:
            failed_cells = len(failures)
            for i, error in failures:
                completed[i] = SweepOutcome(
                    task=tasks[i],
                    usage=0.0,
                    denominator=0.0,
                    ratio=0.0,
                    exact=False,
                    error=error,
                    attempts=attempt + 1,
                )
            break
        retried += len(failures)
        pending = sorted(i for i, _ in failures)
        attempt += 1

    outcomes = [completed[i] for i in range(len(tasks))]
    if registry is not None:
        for outcome in outcomes:
            registry.merge(outcome.telemetry)
        if resumed:
            registry.counter("resilience.sweep.cells_resumed").inc(resumed)
        if checkpointed:
            registry.counter("resilience.sweep.checkpointed").inc(checkpointed)
        if crashes:
            registry.counter("resilience.sweep.crashes").inc(crashes)
        if retried:
            registry.counter("resilience.sweep.retries").inc(retried)
        if failed_cells:
            registry.counter("resilience.sweep.failures").inc(failed_cells)
    return outcomes
