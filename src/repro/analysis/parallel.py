"""Parallel experiment execution over seed/parameter grids.

Ratio sweeps are embarrassingly parallel: each (algorithm, workload, seed)
cell is independent, and the exact ``opt_total`` denominator dominates the
cell's cost.  This module fans cells out over a ``ProcessPoolExecutor``
(bypassing the GIL — the work is pure Python/numpy compute), following the
HPC guides' guidance to parallelise at the outermost independent loop.

Tasks are plain picklable dataclasses naming registered packers and workload
generators, so worker processes can reconstruct everything from the spec —
no closures cross the process boundary.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from functools import partial
from typing import Mapping, Sequence

from ..algorithms.adversary import MemoCache
from ..algorithms.base import get_packer
from ..algorithms.optimal import SolverStats
from ..core.exceptions import ValidationError
from ..obs import TelemetryRegistry, TelemetrySnapshot, enabled as _telemetry_enabled
from ..workloads import (
    bounded_mu,
    bursty,
    cluster_tasks,
    gaming_sessions,
    poisson_exponential,
    uniform_random,
)
from .ratios import measured_ratio

__all__ = ["SweepTask", "SweepOutcome", "run_sweep", "WORKLOAD_GENERATORS"]

#: Workload generators addressable by name from task specs.
WORKLOAD_GENERATORS = {
    "uniform": uniform_random,
    "poisson": poisson_exponential,
    "bounded-mu": bounded_mu,
    "bursty": bursty,
    "gaming": gaming_sessions,
    "cluster": cluster_tasks,
}


@dataclass(frozen=True)
class SweepTask:
    """One experiment cell.

    Attributes:
        packer: Registered packer name.
        packer_kwargs: Constructor arguments.
        workload: Generator name from :data:`WORKLOAD_GENERATORS`.
        workload_kwargs: Generator arguments **including** ``seed`` (and the
            leading count argument as ``n`` where applicable).
        label: Free-form tag copied into the outcome.
    """

    packer: str
    workload: str
    packer_kwargs: Mapping[str, object] = field(default_factory=dict)
    workload_kwargs: Mapping[str, object] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class SweepOutcome:
    """Result of one cell: the measured ratio plus identifying fields.

    ``solver`` carries the cell's adversary counters
    (:class:`~repro.algorithms.SolverStats`): nodes, prunes, memo and
    warm-start hits — merge them across outcomes for a sweep-level view.
    ``telemetry`` is the worker's full
    :class:`~repro.obs.TelemetrySnapshot` (the solver counters plus the
    cell's spans), ready to :meth:`~repro.obs.TelemetryRegistry.merge` into
    a driver-side registry.
    """

    task: SweepTask
    usage: float
    denominator: float
    ratio: float
    exact: bool
    solver: SolverStats = field(default_factory=SolverStats, compare=False)
    telemetry: TelemetrySnapshot = field(
        default_factory=TelemetrySnapshot, compare=False
    )


def _run_one(task: SweepTask, memo_path: str | None = None) -> SweepOutcome:
    """Worker entry point (module-level for pickling)."""
    registry = TelemetryRegistry()
    generator = WORKLOAD_GENERATORS[task.workload]
    kwargs = dict(task.workload_kwargs)
    n = kwargs.pop("n", None)
    packer = get_packer(task.packer, **dict(task.packer_kwargs))
    stats = SolverStats(registry=registry)
    memo = MemoCache(memo_path, registry=registry) if memo_path is not None else None
    timed = _telemetry_enabled()
    t0 = time.perf_counter() if timed else 0.0
    with registry.span("sweep.cell"):
        items = generator(n, **kwargs) if n is not None else generator(**kwargs)
        m = measured_ratio(packer, items, memo=memo, stats=stats)
    if timed:
        registry.histogram("sweep.cell_latency").observe(time.perf_counter() - t0)
    if memo is not None:
        memo.save()
    registry.counter("sweep.cells").inc()
    return SweepOutcome(
        task=task,
        usage=m.usage,
        denominator=m.denominator,
        ratio=m.ratio,
        exact=m.exact,
        solver=stats,
        telemetry=registry.snapshot(),
    )


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    max_workers: int | None = None,
    executor: str = "process",
    memo_path: str | None = None,
    registry: TelemetryRegistry | None = None,
) -> list[SweepOutcome]:
    """Execute tasks, in parallel by default; order follows the input.

    Outcomes are always returned (and merged) in **input task order**, not
    completion order, so sweep reports and ``"last"``-aggregated gauges are
    deterministic regardless of worker scheduling.

    Args:
        tasks: The experiment cells.
        max_workers: Worker count (``None`` = executor default).
        executor: ``"process"`` (default; true parallelism),
            ``"thread"`` (useful under debuggers), or ``"serial"``.
        memo_path: Optional path of a disk-backed adversary
            :class:`~repro.algorithms.MemoCache` shared by every cell: each
            worker loads it before measuring and merge-saves after, so
            repeated runs (and cells sharing slices) stop recomputing
            identical bin packing instances.
        registry: Optional driver-side :class:`~repro.obs.TelemetryRegistry`
            every cell's telemetry snapshot is merged into (in task order).

    Raises:
        ValidationError: for unknown workload names or executor kinds.
    """
    for task in tasks:
        if task.workload not in WORKLOAD_GENERATORS:
            raise ValidationError(
                f"unknown workload {task.workload!r}; "
                f"available: {sorted(WORKLOAD_GENERATORS)}"
            )
    run = partial(_run_one, memo_path=memo_path)
    if executor == "serial":
        outcomes = [run(t) for t in tasks]
    else:
        pool_cls: type[Executor]
        if executor == "process":
            pool_cls = ProcessPoolExecutor
        elif executor == "thread":
            pool_cls = ThreadPoolExecutor
        else:
            raise ValidationError(f"unknown executor {executor!r}")
        with pool_cls(max_workers=max_workers) as pool:
            index_of: dict[Future[SweepOutcome], int] = {
                pool.submit(run, task): i for i, task in enumerate(tasks)
            }
            collected: list[SweepOutcome | None] = [None] * len(tasks)
            for future in as_completed(index_of):
                collected[index_of[future]] = future.result()
        # Completion order is nondeterministic; task index order is not.
        outcomes = [o for o in collected if o is not None]
    if registry is not None:
        for outcome in outcomes:
            registry.merge(outcome.telemetry)
    return outcomes
