"""Reserved-capacity planning on top of a packing.

Cloud providers sell discounted *reserved* servers (paid for the whole
horizon whether used or not) alongside pay-as-you-go on-demand servers.
Given a packing's open-bins profile ``B(t)``, holding ``R`` reserved servers
costs

    ``R · reserved_rate · horizon  +  ondemand_rate · ∫ max(0, B(t) − R) dt``

which is piecewise-linear and convex in ``R``, so the optimal reservation
level is found exactly by scanning ``R = 0 .. max B(t)``.  This quantifies
how much of a policy's rented time is *base load* (worth reserving) versus
*burst* — a practical lens on the MinUsageTime objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import ValidationError
from ..core.packing import PackingResult

__all__ = ["ReservedPricing", "ReservedPlan", "optimize_reservation"]


@dataclass(frozen=True, slots=True)
class ReservedPricing:
    """Rates for the two procurement modes.

    Attributes:
        ondemand_rate: Price per server-hour of on-demand usage.
        reserved_rate: Price per server-hour of a reservation (charged for
            the whole horizon); must not exceed ``ondemand_rate`` for
            reservations to ever pay off.
    """

    ondemand_rate: float = 1.0
    reserved_rate: float = 0.6

    def __post_init__(self) -> None:
        if self.ondemand_rate <= 0 or self.reserved_rate <= 0:
            raise ValidationError("rates must be positive")
        if self.reserved_rate > self.ondemand_rate:
            raise ValidationError(
                "reserved_rate must not exceed ondemand_rate "
                f"({self.reserved_rate} > {self.ondemand_rate})"
            )


@dataclass(frozen=True, slots=True)
class ReservedPlan:
    """An optimised reservation decision.

    Attributes:
        num_reserved: Servers reserved for the whole horizon.
        horizon: Length of the planning window (span of the packing).
        reserved_cost: ``num_reserved · reserved_rate · horizon``.
        ondemand_cost: On-demand charge for demand above the reservation.
        total_cost: Sum of the two.
        all_ondemand_cost: Baseline cost with zero reservations.
    """

    num_reserved: int
    horizon: float
    reserved_cost: float
    ondemand_cost: float
    total_cost: float
    all_ondemand_cost: float

    @property
    def savings(self) -> float:
        """Absolute saving versus the all-on-demand baseline."""
        return self.all_ondemand_cost - self.total_cost

    @property
    def savings_fraction(self) -> float:
        """Relative saving versus all-on-demand (0 when the baseline is 0)."""
        if self.all_ondemand_cost == 0:
            return 0.0
        return self.savings / self.all_ondemand_cost


def optimize_reservation(
    packing: PackingResult, pricing: ReservedPricing | None = None
) -> ReservedPlan:
    """Choose the cost-minimising number of reserved servers for a packing.

    The horizon is the packing's span (first arrival to last departure);
    the open-bins profile is evaluated exactly on its constant pieces.

    Args:
        packing: Any feasible packing.
        pricing: Rates; defaults to on-demand 1.0 / reserved 0.6.
    """
    pricing = pricing or ReservedPricing()
    profile = packing.open_bins_profile()
    segments = list(profile.segments())
    if not segments:
        return ReservedPlan(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    horizon = segments[-1][1] - segments[0][0]
    max_bins = int(round(profile.max_value()))

    def cost_at(reserved: int) -> tuple[float, float]:
        reserved_cost = reserved * pricing.reserved_rate * horizon
        overflow = sum(
            (right - left) * max(0.0, value - reserved)
            for left, right, value in segments
        )
        return reserved_cost, pricing.ondemand_rate * overflow

    best_r, best_costs = 0, cost_at(0)
    for r in range(1, max_bins + 1):
        costs = cost_at(r)
        if sum(costs) < sum(best_costs) - 1e-12:
            best_r, best_costs = r, costs
    all_ondemand = cost_at(0)[1]
    return ReservedPlan(
        num_reserved=best_r,
        horizon=horizon,
        reserved_cost=best_costs[0],
        ondemand_cost=best_costs[1],
        total_cost=sum(best_costs),
        all_ondemand_cost=all_ondemand,
    )
