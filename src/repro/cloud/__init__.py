"""Application layer: cloud jobs, servers, scheduler and policy bake-offs."""

from .autoscaler import PolicyReport, compare_policies, compare_policies_on_items
from .jobs import Job, items_to_jobs, jobs_to_items
from .reserved import ReservedPlan, ReservedPricing, optimize_reservation
from .scheduler import CloudScheduler, SchedulePlan
from .servers import ServerLease, leases_from_packing

__all__ = [
    "PolicyReport",
    "compare_policies",
    "compare_policies_on_items",
    "Job",
    "items_to_jobs",
    "jobs_to_items",
    "ReservedPlan",
    "ReservedPricing",
    "optimize_reservation",
    "CloudScheduler",
    "SchedulePlan",
    "ServerLease",
    "leases_from_packing",
]
