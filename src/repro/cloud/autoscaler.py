"""Policy comparison harness — the "autoscaler bake-off".

Given one workload and several packing policies, run each through the
:class:`~repro.cloud.CloudScheduler` and tabulate rental costs under one or
more billing schemes, plus the efficiency ratio against the Proposition 1–3
lower bound.  This is the end-to-end experiment behind
``benchmarks/bench_cloud_cost.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..algorithms.base import Packer
from ..bounds.opt_bounds import best_lower_bound
from ..core.items import ItemList
from ..obs import TelemetryRegistry
from ..simulation.billing import BillingPolicy
from .jobs import Job, items_to_jobs
from .scheduler import CloudScheduler

__all__ = ["PolicyReport", "compare_policies", "compare_policies_on_items"]


@dataclass(frozen=True, slots=True)
class PolicyReport:
    """One policy's cost report on one workload."""

    policy: str
    num_leases: int
    usage_time: float
    ratio_lb: float
    costs: dict[str, float]  # billing-policy name -> billed cost

    def as_dict(self) -> dict[str, object]:
        """Flatten the report (costs become ``cost[<name>]`` columns)."""
        out: dict[str, object] = {
            "policy": self.policy,
            "num_leases": self.num_leases,
            "usage_time": self.usage_time,
            "ratio_lb": self.ratio_lb,
        }
        out.update({f"cost[{k}]": v for k, v in self.costs.items()})
        return out


def compare_policies(
    jobs: Sequence[Job],
    policies: Iterable[Packer | str],
    *,
    server_capacity: float = 1.0,
    billings: Sequence[BillingPolicy] = (),
    registry: TelemetryRegistry | None = None,
) -> list[PolicyReport]:
    """Schedule the same jobs under each policy and report costs.

    Args:
        jobs: The workload.
        policies: Packer instances or registered names.
        server_capacity: Capacity of one server in job-demand units.
        billings: Billing schemes to price each plan under (exact usage is
            always reported via ``usage_time``).
        registry: Optional shared :class:`~repro.obs.TelemetryRegistry`
            every scheduler run records into (per-policy spans and metrics);
            reports are identical with or without it.
    """
    reports = []
    for policy in policies:
        scheduler = CloudScheduler(
            policy, server_capacity=server_capacity, registry=registry
        )
        plan = scheduler.schedule(jobs)
        lb = best_lower_bound(plan.packing.items)
        reports.append(
            PolicyReport(
                policy=plan.policy,
                num_leases=plan.num_leases,
                usage_time=plan.usage_time,
                ratio_lb=plan.usage_time / lb if lb > 0 else 1.0,
                costs={b.name: b.cost(plan.packing) for b in billings},
            )
        )
    return reports


def compare_policies_on_items(
    items: ItemList,
    policies: Iterable[Packer | str],
    *,
    billings: Sequence[BillingPolicy] = (),
    registry: TelemetryRegistry | None = None,
) -> list[PolicyReport]:
    """Like :func:`compare_policies` but starting from an item list."""
    jobs = items_to_jobs(items, 1.0)
    return compare_policies(
        jobs, policies, server_capacity=1.0, billings=billings, registry=registry
    )
