"""Servers: the application-level view of bins.

A :class:`ServerLease` is one rental of one server — an acquisition time, a
release time, and the jobs it hosted.  A packing's bins translate into
leases one-to-one per maximal usage interval (online policies produce one
lease per bin; offline packings may reuse a bin index across disjoint
periods, which are separate rentals in cost terms).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.packing import PackingResult

__all__ = ["ServerLease", "leases_from_packing"]


@dataclass(frozen=True, slots=True)
class ServerLease:
    """One server rental.

    Attributes:
        server_id: Sequential lease identifier.
        acquired: Rental start (first hosted job's arrival).
        released: Rental end (last hosted job's departure in this period).
        job_ids: Jobs hosted during this lease, in arrival order.
    """

    server_id: int
    acquired: float
    released: float
    job_ids: tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.released - self.acquired


def leases_from_packing(packing: PackingResult) -> list[ServerLease]:
    """Expand a packing into server leases (one per maximal usage interval)."""
    leases: list[ServerLease] = []
    for b in packing.bins():
        for iv in b.usage_intervals():
            hosted = tuple(
                r.id
                for r in sorted(b.items, key=lambda r: (r.arrival, r.id))
                if r.interval.overlaps(iv)
            )
            leases.append(
                ServerLease(
                    server_id=len(leases),
                    acquired=iv.left,
                    released=iv.right,
                    job_ids=hosted,
                )
            )
    return leases
