"""The cloud scheduler: jobs in, server leases and rental cost out.

:class:`CloudScheduler` is the end-to-end application the paper's
introduction motivates: it receives jobs, normalises them against a server
capacity, lets a configurable packing policy (any registered packer) decide
server placement — using *predicted* completion times when the policy is
clairvoyant — and reports the resulting leases and billed cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..algorithms.base import OnlinePacker, Packer, get_packer
from ..core.items import Item
from ..core.packing import PackingResult
from ..obs import TelemetryRegistry
from ..simulation.billing import BillingPolicy
from ..simulation.simulator import Simulator
from .jobs import Job, jobs_to_items
from .servers import ServerLease, leases_from_packing

__all__ = ["SchedulePlan", "CloudScheduler"]


@dataclass(frozen=True, slots=True)
class SchedulePlan:
    """The scheduler's output for one batch of jobs."""

    packing: PackingResult
    leases: list[ServerLease]
    usage_time: float
    billed_cost: float
    policy: str

    @property
    def num_leases(self) -> int:
        return len(self.leases)


def _predicted_departure(item: Item) -> float:
    """Estimator reading the prediction stashed by :func:`jobs_to_items`."""
    pred = item.tags.get("predicted_departure", item.departure)
    return float(pred)  # type: ignore[arg-type]


class CloudScheduler:
    """Schedules cloud jobs onto rented servers using a packing policy.

    Args:
        policy: A packer instance or registered packer name.
        server_capacity: Capacity of one server in job-demand units.
        billing: Billing policy used for the cost report (exact by default).
        registry: Optional shared :class:`~repro.obs.TelemetryRegistry`;
            every ``schedule`` call records a ``cloud.schedule`` span plus
            job/lease/cost metrics labelled by policy.
        policy_kwargs: Forwarded to :func:`repro.algorithms.get_packer` when
            ``policy`` is a name.
    """

    def __init__(
        self,
        policy: Packer | str,
        *,
        server_capacity: float = 1.0,
        billing: BillingPolicy | None = None,
        registry: TelemetryRegistry | None = None,
        **policy_kwargs: object,
    ) -> None:
        self.packer = (
            get_packer(policy, **policy_kwargs) if isinstance(policy, str) else policy
        )
        self.server_capacity = server_capacity
        self.billing = billing or BillingPolicy()
        self.registry = registry if registry is not None else TelemetryRegistry()

    def schedule(self, jobs: Iterable[Job]) -> SchedulePlan:
        """Produce a :class:`SchedulePlan` for the given jobs.

        Online policies run through the :class:`~repro.simulation.Simulator`
        so that placement decisions see the jobs' *predicted* completion
        times while costs reflect actual ones; offline policies receive the
        actual intervals directly (the offline model assumes full knowledge).
        """
        with self.registry.span("cloud.schedule"):
            items = jobs_to_items(jobs, self.server_capacity)
            if isinstance(self.packer, OnlinePacker):
                packing = Simulator(self.packer).run(items, _predicted_departure).packing
            else:
                packing = self.packer.pack(items)
            packing.validate()
        labels = {"policy": self.packer.describe()}
        self.registry.counter("cloud.schedules", **labels).inc()
        self.registry.counter("cloud.jobs", **labels).inc(len(items))
        self.registry.gauge("cloud.leases", **labels).set(packing.num_bins)
        self.registry.gauge("cloud.usage_time", **labels).set(packing.total_usage())
        return SchedulePlan(
            packing=packing,
            leases=leases_from_packing(packing),
            usage_time=packing.total_usage(),
            billed_cost=self.billing.cost(packing),
            policy=self.packer.describe(),
        )
