"""Cloud jobs and their mapping to DBP items.

The paper's introduction maps the server-acquisition problem onto DBP: jobs
are items, servers are bins, and a job's resource demand relative to the
server capacity is the item size.  :class:`Job` carries the application-level
fields (absolute resource demand, predicted vs actual duration); the
:func:`jobs_to_items` mapping normalises demands by a server capacity and is
where the clairvoyant assumption becomes explicit — the *predicted* end time
is what the packer will see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.exceptions import ValidationError
from ..core.intervals import Interval
from ..core.items import Item, ItemList

__all__ = ["Job", "jobs_to_items", "items_to_jobs"]


@dataclass(frozen=True, slots=True)
class Job:
    """A cloud job.

    Attributes:
        job_id: Unique identifier.
        demand: Absolute resource demand (e.g. vCPUs), in the same unit as
            the server capacity it will be normalised by.
        arrival: Submission time (the job starts immediately — the paper's
            interval-job model).
        duration: Actual run time.
        predicted_duration: What the predictor says at submission; defaults
            to the actual duration (perfect clairvoyance).
        tags: Free-form metadata.
    """

    job_id: int
    demand: float
    arrival: float
    duration: float
    predicted_duration: float | None = None
    tags: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValidationError(f"job {self.job_id}: demand must be positive")
        if self.duration <= 0:
            raise ValidationError(f"job {self.job_id}: duration must be positive")
        if self.predicted_duration is not None and self.predicted_duration <= 0:
            raise ValidationError(
                f"job {self.job_id}: predicted_duration must be positive"
            )

    @property
    def departure(self) -> float:
        return self.arrival + self.duration

    @property
    def predicted_departure(self) -> float:
        pred = self.predicted_duration if self.predicted_duration is not None else self.duration
        return self.arrival + pred


def jobs_to_items(jobs: Iterable[Job], server_capacity: float) -> ItemList:
    """Normalise jobs into unit-capacity DBP items.

    Args:
        jobs: The jobs to convert.
        server_capacity: Capacity of one server in demand units; every job's
            demand must fit a single server.

    Items use the jobs' *actual* intervals; the predicted departure is kept
    in the tag ``"predicted_departure"`` for the simulator's estimator.

    Raises:
        ValidationError: if a job demands more than one server's capacity.
    """
    if server_capacity <= 0:
        raise ValidationError(f"server_capacity must be positive, got {server_capacity}")
    items = []
    for job in jobs:
        size = job.demand / server_capacity
        if size > 1.0:
            raise ValidationError(
                f"job {job.job_id} demand {job.demand} exceeds server capacity "
                f"{server_capacity}"
            )
        tags = dict(job.tags)
        tags["predicted_departure"] = job.predicted_departure
        items.append(
            Item(job.job_id, size, Interval(job.arrival, job.departure), tags)
        )
    return ItemList(items)


def items_to_jobs(items: ItemList, server_capacity: float) -> list[Job]:
    """Inverse of :func:`jobs_to_items` (predictions restored from tags)."""
    jobs = []
    for r in items:
        pred_dep = r.tags.get("predicted_departure")
        pred = float(pred_dep) - r.arrival if pred_dep is not None else None  # type: ignore[arg-type]
        tags = {k: v for k, v in r.tags.items() if k != "predicted_departure"}
        jobs.append(
            Job(
                job_id=r.id,
                demand=r.size * server_capacity,
                arrival=r.arrival,
                duration=r.duration,
                predicted_duration=pred,
                tags=tags,
            )
        )
    return jobs
