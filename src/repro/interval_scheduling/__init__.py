"""Interval scheduling with bounded parallelism (the §2 related problem)."""

from .algorithms import (
    BucketFirstFitScheduler,
    FirstFitScheduler,
    GreedyProperScheduler,
    LongestFirstScheduler,
    is_proper,
)
from .model import Schedule, UnitJob, jobs_to_unit_items

__all__ = [
    "BucketFirstFitScheduler",
    "FirstFitScheduler",
    "GreedyProperScheduler",
    "LongestFirstScheduler",
    "is_proper",
    "Schedule",
    "UnitJob",
    "jobs_to_unit_items",
]
