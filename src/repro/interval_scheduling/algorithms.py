"""Interval-scheduling algorithms, via the size-1/g embedding.

* :class:`LongestFirstScheduler` — the offline "sort by length, first fit"
  algorithm of Flammini et al. [10] (4-approx for unit jobs; our Theorem 1
  analysis gives 5 for general sizes).  It is Duration Descending First Fit
  under the embedding.
* :class:`BucketFirstFitScheduler` — Shalom et al.'s online BucketFirstFit
  [23]: jobs are classified into length buckets of ratio α and First Fit
  runs within each bucket.  Under the embedding this is *exactly* the
  paper's classify-by-duration First Fit, whose Theorem 5 analysis improves
  the known competitive ratio from ``(2α+2)·⌈log_α μ⌉`` to
  ``α + ⌈log_α μ⌉ + 4`` (paper §5.3 remark).
* :class:`FirstFitScheduler` — plain online First Fit, the baseline.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms.anyfit import FirstFitPacker
from ..algorithms.classify_duration import ClassifyByDurationFirstFit
from ..algorithms.duration_descending import DurationDescendingFirstFit
from ..core.exceptions import ValidationError
from .model import Schedule, UnitJob, jobs_to_unit_items

__all__ = [
    "LongestFirstScheduler",
    "BucketFirstFitScheduler",
    "FirstFitScheduler",
    "GreedyProperScheduler",
    "is_proper",
]


def is_proper(jobs: "Sequence[UnitJob]") -> bool:
    """True iff no job's interval properly contains another's (§2: the
    special case where greedy arrival-order scheduling is 2-approximate
    [10, 20]).  Proper ⇔ sorting by arrival also sorts by departure."""
    ordered = sorted(jobs, key=lambda j: (j.arrival, j.departure))
    departures = [j.departure for j in ordered]
    return all(a <= b for a, b in zip(departures, departures[1:]))


class _EmbeddingScheduler:
    """Base: run a DBP packer on the size-1/g embedding of the jobs."""

    def __init__(self, g: int) -> None:
        if g < 1:
            raise ValidationError(f"machine capacity g must be >= 1, got {g}")
        self.g = g

    def _packer(self):
        raise NotImplementedError

    def schedule(self, jobs: Sequence[UnitJob]) -> Schedule:
        """Assign jobs to machines; the result validates g-parallelism."""
        items = jobs_to_unit_items(jobs, self.g)
        packing = self._packer().pack(items)
        schedule = Schedule(packing, self.g)
        schedule.validate()
        return schedule


class LongestFirstScheduler(_EmbeddingScheduler):
    """Offline: longest job first, first fit (Flammini et al. [10])."""

    name = "longest-first"

    def _packer(self):
        return DurationDescendingFirstFit()


class FirstFitScheduler(_EmbeddingScheduler):
    """Online plain First Fit baseline."""

    name = "first-fit"

    def _packer(self):
        return FirstFitPacker()


class BucketFirstFitScheduler(_EmbeddingScheduler):
    """Online BucketFirstFit (Shalom et al. [23]).

    Args:
        g: Machine capacity.
        alpha: Length-bucket ratio (> 1).
        base: Bucket base length (``None`` ⇒ first job's length, the online
            choice).
    """

    name = "bucket-first-fit"

    def __init__(self, g: int, alpha: float = 2.0, base: float | None = None) -> None:
        super().__init__(g)
        if alpha <= 1:
            raise ValidationError(f"alpha must exceed 1, got {alpha}")
        self.alpha = alpha
        self.base = base

    def _packer(self):
        return ClassifyByDurationFirstFit(alpha=self.alpha, base=self.base)


class GreedyProperScheduler(_EmbeddingScheduler):
    """Arrival-order greedy for *proper* instances (Flammini et al. [10]).

    When no interval properly contains another, processing jobs in arrival
    order with first fit is 2-approximate for busy time ([10]; improved to
    2−1/g by Mertzios et al. [20]).  On general instances the guarantee is
    void; :meth:`schedule` raises by default and can be asked to proceed
    anyway (``require_proper=False``) for comparisons.

    Under the size-1/g embedding, arrival-order first fit is exactly
    :class:`~repro.algorithms.FirstFitPacker`; the class exists to carry the
    properness contract and its validation.
    """

    name = "greedy-proper"

    def __init__(self, g: int, require_proper: bool = True) -> None:
        super().__init__(g)
        self.require_proper = require_proper

    def _packer(self):
        return FirstFitPacker()

    def schedule(self, jobs: Sequence[UnitJob]) -> Schedule:
        if self.require_proper and not is_proper(jobs):
            raise ValidationError(
                "GreedyProperScheduler requires a proper instance (no interval "
                "properly contained in another); pass require_proper=False to "
                "run without the 2-approximation guarantee"
            )
        return super().schedule(jobs)
