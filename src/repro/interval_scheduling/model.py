"""Interval scheduling with bounded parallelism — the g-machine model (§2).

The paper's problem generalises *interval scheduling with bounded
parallelism* [10, 20, 23, 8]: interval jobs with **equal** resource demands
run on machines that each process at most ``g`` jobs concurrently, and the
objective is to minimise total machine *busy time*.  Setting every item size
to ``1/g`` embeds that problem into MinUsageTime DBP exactly, which is how
this subpackage implements it — so every DBP packer doubles as an interval
scheduler, and the paper's §5.3 improvement over BucketFirstFit is directly
executable (see :mod:`repro.interval_scheduling.algorithms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.exceptions import ValidationError
from ..core.intervals import Interval
from ..core.items import Item, ItemList
from ..core.packing import PackingResult

__all__ = ["UnitJob", "jobs_to_unit_items", "Schedule"]


@dataclass(frozen=True, slots=True)
class UnitJob:
    """An interval job with unit demand (all jobs are interchangeable).

    Attributes:
        job_id: Unique identifier.
        interval: The fixed processing interval (arrival to completion).
    """

    job_id: int
    interval: Interval

    @property
    def arrival(self) -> float:
        return self.interval.left

    @property
    def departure(self) -> float:
        return self.interval.right

    @property
    def length(self) -> float:
        return self.interval.length


def jobs_to_unit_items(jobs: Iterable[UnitJob], g: int) -> ItemList:
    """Embed unit jobs into DBP items of size ``1/g``.

    A machine of capacity ``g`` becomes a unit bin holding ``g`` concurrent
    items; machine busy time becomes bin usage time, exactly.

    Raises:
        ValidationError: if ``g < 1``.
    """
    if g < 1:
        raise ValidationError(f"machine capacity g must be >= 1, got {g}")
    return ItemList(Item(j.job_id, 1.0 / g, j.interval) for j in jobs)


class Schedule:
    """A job→machine assignment with busy-time accounting.

    Thin wrapper over :class:`~repro.core.PackingResult` keeping the
    interval-scheduling vocabulary (machines, busy time) and validating that
    no machine ever runs more than ``g`` concurrent jobs.
    """

    def __init__(self, packing: PackingResult, g: int) -> None:
        self.packing = packing
        self.g = g

    @property
    def assignment(self) -> Mapping[int, int]:
        """job id -> machine index."""
        return self.packing.assignment

    @property
    def num_machines(self) -> int:
        return self.packing.num_bins

    def busy_time(self) -> float:
        """Total machine busy time (the objective of [10, 20, 23, 8])."""
        return self.packing.total_usage()

    def validate(self) -> None:
        """Check the g-parallelism constraint at every event time.

        Raises:
            ValidationError: if some machine exceeds ``g`` concurrent jobs.
        """
        for b in self.packing.bins():
            for t in sorted({r.arrival for r in b.items}):
                concurrent = sum(1 for r in b.items if r.active_at(t))
                if concurrent > self.g:
                    raise ValidationError(
                        f"machine {b.index} runs {concurrent} > g={self.g} "
                        f"jobs at t={t}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(machines={self.num_machines}, g={self.g})"
