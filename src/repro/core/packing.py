"""Packing results: assignments, feasibility validation and the objective.

A :class:`PackingResult` is the canonical output of every algorithm in the
library: the item list plus an item→bin assignment.  It rebuilds the bins,
validates feasibility and computes the MinUsageTime objective (total bin
usage time) and auxiliary profiles used in the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .bins import Bin, bins_from_assignment
from .exceptions import ValidationError
from .intervals import Interval
from .items import ItemList
from .stepfun import DEFAULT_TOL, StepFunction

__all__ = ["PackingResult", "PackingStats"]


@dataclass(frozen=True, slots=True)
class PackingStats:
    """Summary statistics of a packing, suitable for tabulation."""

    algorithm: str
    num_items: int
    num_bins: int
    total_usage: float
    total_demand: float
    span: float
    max_open_bins: int
    utilization: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabulation."""
        return {
            "algorithm": self.algorithm,
            "num_items": self.num_items,
            "num_bins": self.num_bins,
            "total_usage": self.total_usage,
            "total_demand": self.total_demand,
            "span": self.span,
            "max_open_bins": self.max_open_bins,
            "utilization": self.utilization,
        }


class PackingResult:
    """An item→bin assignment with validation and objective computation.

    Args:
        items: The packed item list.
        assignment: Map from item id to bin index.  Bin indices should be
            the opening order of the producing algorithm but any integers
            work; they are preserved.
        algorithm: Human-readable producer name (for reports).
        capacity: Bin capacity used for validation.
        tol: Capacity tolerance.

    Raises:
        ValidationError: if the assignment does not cover exactly the item
            list's ids.
    """

    __slots__ = ("items", "assignment", "algorithm", "capacity", "tol", "_bins")

    def __init__(
        self,
        items: ItemList,
        assignment: Mapping[int, int],
        *,
        algorithm: str = "unknown",
        capacity: float = 1.0,
        tol: float = DEFAULT_TOL,
    ) -> None:
        ids = {r.id for r in items}
        if set(assignment) != ids:
            missing = ids - set(assignment)
            extra = set(assignment) - ids
            raise ValidationError(
                f"assignment does not match items (missing={sorted(missing)[:5]}, "
                f"extra={sorted(extra)[:5]})"
            )
        self.items = items
        self.assignment: dict[int, int] = dict(assignment)
        self.algorithm = algorithm
        self.capacity = capacity
        self.tol = tol
        self._bins: list[Bin] | None = None

    # -- bins -----------------------------------------------------------------

    def bins(self) -> Sequence[Bin]:
        """The bins of this packing, materialised lazily (cached)."""
        if self._bins is None:
            self._bins = bins_from_assignment(
                self.items, self.assignment, capacity=self.capacity, tol=self.tol
            )
        return self._bins

    @property
    def num_bins(self) -> int:
        """Number of distinct bins ever opened."""
        return len(set(self.assignment.values()))

    # -- feasibility -------------------------------------------------------------

    def validate(self) -> None:
        """Check full feasibility of the packing.

        Verified invariants:

        * every item is assigned to exactly one bin for its entire active
          interval (no migration is representable in this model by
          construction, so this is implied by the assignment shape);
        * at every event time, each bin's level is within capacity.

        Levels are piecewise constant between event times, so checking at
        event times (the left endpoint of each constant piece) is exact.

        Raises:
            ValidationError: on any capacity violation, reporting the bin,
                time and level.
        """
        for b in self.bins():
            profile = StepFunction()
            for item in b.items:
                profile.add(item.interval, item.size)
            for left, _right, value in profile.segments():
                if value > self.capacity + self.tol:
                    raise ValidationError(
                        f"bin {b.index} overflows at t={left}: level {value} > "
                        f"capacity {self.capacity}"
                    )

    def is_feasible(self) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate()
        except ValidationError:
            return False
        return True

    # -- objective & profiles -------------------------------------------------------

    def total_usage(self) -> float:
        """The MinUsageTime objective: ``Σ_bins span(items in bin)``."""
        return sum(b.usage_time() for b in self.bins())

    def per_bin_usage(self) -> dict[int, float]:
        """Usage time of each bin, keyed by bin index."""
        return {b.index: b.usage_time() for b in self.bins()}

    def open_bins_profile(self) -> StepFunction:
        """Step function counting bins in use at each time."""
        profile = StepFunction()
        for b in self.bins():
            for iv in b.usage_intervals():
                profile.add(iv, 1.0)
        return profile

    def max_open_bins(self) -> int:
        """Peak number of simultaneously used bins (classical-DBP objective)."""
        return int(round(self.open_bins_profile().max_value()))

    def open_bins_at(self, t: float) -> int:
        """Number of bins in use at time ``t``."""
        return int(round(self.open_bins_profile().value_at(t)))

    def utilization(self) -> float:
        """``d(R) / total_usage`` — fraction of rented capacity actually used."""
        usage = self.total_usage()
        if usage == 0:
            return 1.0
        return self.items.total_demand() / usage

    def bin_usage_over(self, interval: Interval) -> float:
        """Aggregate bin usage time restricted to a window (for stage analyses)."""
        total = 0.0
        for b in self.bins():
            for iv in b.usage_intervals():
                clipped = iv.intersection(interval)
                if clipped is not None:
                    total += clipped.length
        return total

    def stats(self) -> PackingStats:
        """Aggregate :class:`PackingStats` for reporting."""
        return PackingStats(
            algorithm=self.algorithm,
            num_items=len(self.items),
            num_bins=self.num_bins,
            total_usage=self.total_usage(),
            total_demand=self.items.total_demand(),
            span=self.items.span(),
            max_open_bins=self.max_open_bins(),
            utilization=self.utilization(),
        )

    # -- serialisation -------------------------------------------------------

    def to_record(self) -> dict[str, object]:
        """A JSON-ready record of this packing (items + assignment)."""
        return {
            "algorithm": self.algorithm,
            "capacity": self.capacity,
            "items": self.items.to_records(),
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "PackingResult":
        """Inverse of :meth:`to_record`."""
        items = ItemList.from_records(record["items"])  # type: ignore[arg-type]
        assignment = {
            int(k): int(v)
            for k, v in record["assignment"].items()  # type: ignore[union-attr]
        }
        return cls(
            items,
            assignment,
            algorithm=str(record.get("algorithm", "unknown")),
            capacity=float(record.get("capacity", 1.0)),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        """JSON text for the whole packing (audit/replay artefact)."""
        import json

        return json.dumps(self.to_record())

    @classmethod
    def from_json(cls, text: str) -> "PackingResult":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_record(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackingResult(algorithm={self.algorithm!r}, items={len(self.items)}, "
            f"bins={self.num_bins})"
        )
