"""Packing results: assignments, feasibility validation and the objective.

A :class:`PackingResult` is the canonical output of every algorithm in the
library: the item list plus an item→bin assignment.  It rebuilds the bins,
validates feasibility and computes the MinUsageTime objective (total bin
usage time) and auxiliary profiles used in the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .bins import Bin, bins_from_assignment
from .exceptions import ValidationError
from .intervals import Interval
from .items import ItemList
from .stepfun import DEFAULT_TOL, StepFunction

__all__ = ["PackingResult", "PackingStats"]


@dataclass(frozen=True, slots=True)
class PackingStats:
    """Summary statistics of a packing, suitable for tabulation."""

    algorithm: str
    num_items: int
    num_bins: int
    total_usage: float
    total_demand: float
    span: float
    max_open_bins: int
    utilization: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabulation."""
        return {
            "algorithm": self.algorithm,
            "num_items": self.num_items,
            "num_bins": self.num_bins,
            "total_usage": self.total_usage,
            "total_demand": self.total_demand,
            "span": self.span,
            "max_open_bins": self.max_open_bins,
            "utilization": self.utilization,
        }


class PackingResult:
    """An item→bin assignment with validation and objective computation.

    Args:
        items: The packed item list.
        assignment: Map from item id to bin index.  Bin indices should be
            the opening order of the producing algorithm but any integers
            work; they are preserved.
        algorithm: Human-readable producer name (for reports).
        capacity: Bin capacity used for validation.
        tol: Capacity tolerance.

    Raises:
        ValidationError: if the assignment does not cover exactly the item
            list's ids.
    """

    __slots__ = ("items", "assignment", "algorithm", "capacity", "tol", "_bins")

    def __init__(
        self,
        items: ItemList,
        assignment: Mapping[int, int],
        *,
        algorithm: str = "unknown",
        capacity: float = 1.0,
        tol: float = DEFAULT_TOL,
    ) -> None:
        ids = {r.id for r in items}
        if set(assignment) != ids:
            missing = ids - set(assignment)
            extra = set(assignment) - ids
            raise ValidationError(
                f"assignment does not match items (missing={sorted(missing)[:5]}, "
                f"extra={sorted(extra)[:5]})"
            )
        self.items = items
        self.assignment: dict[int, int] = dict(assignment)
        self.algorithm = algorithm
        self.capacity = capacity
        self.tol = tol
        self._bins: list[Bin] | None = None

    @classmethod
    def from_bins(
        cls,
        bins: Iterable[Bin],
        items: ItemList | None = None,
        *,
        algorithm: str = "unknown",
        capacity: float = 1.0,
        tol: float = DEFAULT_TOL,
    ) -> "PackingResult":
        """Build a result directly from materialised bins.

        This is the canonical constructor for algorithms that maintain
        :class:`~repro.core.Bin` objects while packing (every online packer,
        the streaming engine, the exact solvers): the assignment is derived
        from the bins, so the two can never disagree.  The plain constructor
        remains for assignment-only callers (deserialisation, repacking
        transforms); avoid hand-rolling assignment dicts when bins exist.

        Args:
            bins: The packing's bins; empty bins are skipped.
            items: The packed item list.  ``None`` collects the items from
                the bins (ids must be unique).
            algorithm: Producer name for reports.
            capacity: Bin capacity used for validation.
            tol: Capacity tolerance.
        """
        bins = list(bins)
        assignment = {r.id: b.index for b in bins for r in b}
        if items is None:
            items = ItemList(r for b in bins for r in b)
        return cls(items, assignment, algorithm=algorithm, capacity=capacity, tol=tol)

    # -- bins -----------------------------------------------------------------

    def bins(self) -> Sequence[Bin]:
        """The bins of this packing, materialised lazily (cached)."""
        if self._bins is None:
            self._bins = bins_from_assignment(
                self.items, self.assignment, capacity=self.capacity, tol=self.tol
            )
        return self._bins

    @property
    def num_bins(self) -> int:
        """Number of distinct bins ever opened."""
        return len(set(self.assignment.values()))

    # -- feasibility -------------------------------------------------------------

    def _event_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-item ``(bin, arrival, departure)`` columns as arrays."""
        n = len(self.items)
        bins_col = np.fromiter(
            (self.assignment[r.id] for r in self.items), dtype=np.int64, count=n
        )
        arrivals = np.fromiter((r.arrival for r in self.items), dtype=float, count=n)
        departures = np.fromiter((r.departure for r in self.items), dtype=float, count=n)
        return bins_col, np.stack([arrivals, departures])

    def _sizes_column(self, dim: int) -> np.ndarray:
        """Per-item size in dimension ``dim`` as a float array."""
        n = len(self.items)
        return np.fromiter((r.sizes[dim] for r in self.items), dtype=float, count=n)

    def validate(self) -> None:
        """Check full feasibility of the packing.

        Verified invariants:

        * every item is assigned to exactly one bin for its entire active
          interval (no migration is representable in this model by
          construction, so this is implied by the assignment shape);
        * at every event time, each bin's level is within capacity.

        Levels are piecewise constant between event times, so checking at
        event times (the left endpoint of each constant piece) is exact.
        The check runs on a vectorised numpy sweep — all arrival/departure
        deltas are sorted by (bin, time, sign) and cumulatively summed, with
        per-bin baselines subtracted so float noise cannot leak across bins
        (cross-checked against the segment-by-segment recompute in tests).
        Vector packings run one sweep per resource dimension.

        Raises:
            ValidationError: on any capacity violation, reporting the bin,
                dimension, time and level.
        """
        n = len(self.items)
        if n == 0:
            return
        bins_col, times2 = self._event_arrays()
        ev_bins = np.concatenate([bins_col, bins_col])
        ev_times = np.concatenate([times2[0], times2[1]])
        dims = self.items.dims
        for dim in range(dims):
            sizes = self._sizes_column(dim)
            ev_deltas = np.concatenate([sizes, -sizes])
            # Departures sort before arrivals at equal times (negative deltas
            # first), matching half-open interval semantics.
            order = np.lexsort((ev_deltas, ev_times, ev_bins))
            sorted_bins = ev_bins[order]
            levels = np.cumsum(ev_deltas[order])
            # Subtract each bin's closing balance so the running sum restarts
            # at exactly zero per bin (float cancellation is not exact on its
            # own).
            boundaries = np.flatnonzero(np.diff(sorted_bins)) + 1
            if boundaries.size:
                offsets = np.concatenate([[0.0], levels[boundaries - 1]])
                seg_lengths = np.diff(np.concatenate([[0], boundaries, [2 * n]]))
                levels = levels - np.repeat(offsets, seg_lengths)
            bad = levels > self.capacity + self.tol
            if bad.any():
                k = int(np.argmax(bad))
                where = f" (dim {dim})" if dims > 1 else ""
                raise ValidationError(
                    f"bin {int(sorted_bins[k])} overflows{where} at "
                    f"t={ev_times[order][k]}: "
                    f"level {float(levels[k])} > capacity {self.capacity}"
                )

    def _validate_exact(self) -> None:
        """Reference implementation of :meth:`validate` (pure Python).

        Kept for cross-checking the vectorised sweep in the test suite;
        identical contract and error conditions.
        """
        for b in self.bins():
            for dim in range(self.items.dims):
                profile = StepFunction()
                for item in b.items:
                    profile.add(item.interval, item.sizes[dim])
                for left, _right, value in profile.segments():
                    if value > self.capacity + self.tol:
                        raise ValidationError(
                            f"bin {b.index} overflows at t={left}: level {value} > "
                            f"capacity {self.capacity}"
                        )

    def is_feasible(self) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate()
        except ValidationError:
            return False
        return True

    # -- objective & profiles -------------------------------------------------------

    def total_usage(self) -> float:
        """The MinUsageTime objective: ``Σ_bins span(items in bin)``.

        Computed by a grouped numpy interval-union sweep over the raw
        assignment, so large packings never pay for materialising
        :class:`~repro.core.Bin` objects and their level profiles.  When the
        bins are already cached (someone called :meth:`bins`), their O(1)
        cached usage times are summed instead.
        """
        if self._bins is not None:
            return sum(b.usage_time() for b in self._bins)
        n = len(self.items)
        if n == 0:
            return 0.0
        bins_col, times2 = self._event_arrays()
        order = np.lexsort((times2[0], bins_col))
        sorted_bins = bins_col[order]
        lefts = times2[0][order]
        rights = times2[1][order]
        starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_bins)) + 1, [n]])
        total = 0.0
        for s, e in zip(starts[:-1], starts[1:]):
            ga, gd = lefts[s:e], rights[s:e]
            # Union of sorted-by-left intervals: each interval contributes the
            # part of itself beyond the running maximum departure so far.
            reach = np.maximum.accumulate(gd)
            prev = np.concatenate([[ga[0]], reach[:-1]])
            total += float(np.maximum(gd - np.maximum(ga, prev), 0.0).sum())
        return total

    def per_bin_usage(self) -> dict[int, float]:
        """Usage time of each bin, keyed by bin index."""
        return {b.index: b.usage_time() for b in self.bins()}

    def open_bins_profile(self) -> StepFunction:
        """Step function counting bins in use at each time."""
        profile = StepFunction()
        for b in self.bins():
            for iv in b.usage_intervals():
                profile.add(iv, 1.0)
        return profile

    def max_open_bins(self) -> int:
        """Peak number of simultaneously used bins (classical-DBP objective)."""
        return int(round(self.open_bins_profile().max_value()))

    def open_bins_at(self, t: float) -> int:
        """Number of bins in use at time ``t``."""
        return int(round(self.open_bins_profile().value_at(t)))

    def utilization(self) -> float:
        """``d(R) / total_usage`` — fraction of rented capacity actually used."""
        usage = self.total_usage()
        if usage == 0:
            return 1.0
        return self.items.total_demand() / usage

    def bin_usage_over(self, interval: Interval) -> float:
        """Aggregate bin usage time restricted to a window (for stage analyses)."""
        total = 0.0
        for b in self.bins():
            for iv in b.usage_intervals():
                clipped = iv.intersection(interval)
                if clipped is not None:
                    total += clipped.length
        return total

    def stats(self) -> PackingStats:
        """Aggregate :class:`PackingStats` for reporting."""
        return PackingStats(
            algorithm=self.algorithm,
            num_items=len(self.items),
            num_bins=self.num_bins,
            total_usage=self.total_usage(),
            total_demand=self.items.total_demand(),
            span=self.items.span(),
            max_open_bins=self.max_open_bins(),
            utilization=self.utilization(),
        )

    # -- serialisation -------------------------------------------------------

    def to_record(self) -> dict[str, object]:
        """A JSON-ready record of this packing (items + assignment)."""
        return {
            "algorithm": self.algorithm,
            "capacity": self.capacity,
            "items": self.items.to_records(),
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "PackingResult":
        """Inverse of :meth:`to_record`."""
        items = ItemList.from_records(record["items"])  # type: ignore[arg-type]
        assignment = {
            int(k): int(v)
            for k, v in record["assignment"].items()  # type: ignore[union-attr]
        }
        return cls(
            items,
            assignment,
            algorithm=str(record.get("algorithm", "unknown")),
            capacity=float(record.get("capacity", 1.0)),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        """JSON text for the whole packing (audit/replay artefact)."""
        import json

        return json.dumps(self.to_record())

    @classmethod
    def from_json(cls, text: str) -> "PackingResult":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_record(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackingResult(algorithm={self.algorithm!r}, items={len(self.items)}, "
            f"bins={self.num_bins})"
        )
