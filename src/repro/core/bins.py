"""Bins (servers) with time-varying level profiles.

A :class:`Bin` accumulates committed items.  Its *level* at time ``t`` is the
total size of items active at ``t`` (paper §3.1); the level may never exceed
the capacity.  A bin is created with a fixed dimensionality ``dims`` and keeps
one level profile per resource dimension — the scalar paper setting is the
``dims=1`` degenerate case, and every fit check requires *all* dimensions to
fit simultaneously (§6's vector extension).  The clairvoyant fit check asks
whether an item fits **for its whole active interval**, which matters for
offline packers (e.g. Duration Descending First Fit) that insert items out of
arrival order: the bin may already hold commitments that lie in the new
item's future.

Performance note (streaming engine): every mutation (:meth:`Bin.place`,
:meth:`Bin.amend_last`, :meth:`Bin.pop_last`) incrementally maintains a set
of caches — the occupancy step-functions, the merged usage intervals with
their total length, and the open/close/frontier times — so the hot queries
(:meth:`Bin.close_time`, :meth:`Bin.usage_time`, :meth:`Bin.is_open_at` at
the arrival frontier) are O(1) instead of rescanning the item list.  The
caches are invariant-checked against exact recomputation by
:meth:`Bin.check_invariants` (exercised by the engine parity tests).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from .exceptions import CapacityError, ValidationError
from .intervals import Interval, merge_intervals
from .items import Item
from .stepfun import DEFAULT_TOL, StepFunction

__all__ = ["Bin"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class Bin:
    """A unit-capacity bin holding committed items.

    Args:
        index: The bin's index in its packing (opening order).
        capacity: Bin capacity (shared by every dimension); the library's
            algorithms assume 1.0 (WLOG per paper §3.2) but the data
            structure supports any positive value.
        tol: Absolute tolerance used in capacity comparisons, absorbing float
            summation noise (e.g. ten items of size 0.1).
        dims: Number of resource dimensions; items committed to this bin
            must have exactly this dimensionality.
    """

    __slots__ = (
        "index",
        "capacity",
        "tol",
        "dims",
        "_items",
        "_profiles",
        "_min_arrival",
        "_max_arrival",
        "_max_departure",
        "_usage",
        "_usage_time",
    )

    def __init__(
        self,
        index: int,
        capacity: float = 1.0,
        tol: float = DEFAULT_TOL,
        *,
        dims: int = 1,
    ) -> None:
        if capacity <= 0:
            raise ValidationError(f"bin capacity must be positive, got {capacity}")
        if dims < 1:
            raise ValidationError(f"bin dims must be >= 1, got {dims}")
        self.index = index
        self.capacity = capacity
        self.tol = tol
        self.dims = dims
        self._items: list[Item] = []
        self._profiles = [StepFunction() for _ in range(dims)]
        # Incremental caches (kept exact by every mutation path below).
        self._min_arrival = _POS_INF
        self._max_arrival = _NEG_INF
        self._max_departure = _NEG_INF
        self._usage: list[Interval] = []
        self._usage_time = 0.0

    def _require_dims(self, item: Item) -> tuple[float, ...]:
        sizes = item.sizes
        if len(sizes) != self.dims:
            raise ValidationError(
                f"item {item.id} has {len(sizes)} dimension(s); "
                f"bin {self.index} is {self.dims}-dimensional"
            )
        return sizes

    # -- contents ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    @property
    def items(self) -> tuple[Item, ...]:
        """Items committed to this bin, in placement order."""
        return tuple(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    # -- levels -------------------------------------------------------------------

    def level_at(self, t: float, dim: int = 0) -> float:
        """Committed level at time ``t`` in dimension ``dim``."""
        return self._profiles[dim].value_at(t)

    def levels_at(self, t: float) -> tuple[float, ...]:
        """Committed level at time ``t`` in every dimension."""
        return tuple(p.value_at(t) for p in self._profiles)

    def max_level_over(self, interval: Interval, dim: int = 0) -> float:
        """Maximum committed level over ``interval`` in dimension ``dim``."""
        return self._profiles[dim].max_over(interval)

    def level_profile(self, dim: int = 0) -> StepFunction:
        """A copy of the full level profile for dimension ``dim``."""
        return self._profiles[dim].copy()

    def residual_at(self, t: float, dim: int = 0) -> float:
        """Free capacity at time ``t`` in dimension ``dim``."""
        return self.capacity - self.level_at(t, dim)

    # -- fit checks ------------------------------------------------------------------

    def fits(self, item: Item) -> bool:
        """Clairvoyant fit check: does ``item`` fit *throughout its interval*?

        True iff for every ``t ∈ I(item)`` and every dimension ``d``,
        ``level_d(t) + s_d(item) <= capacity`` (within tolerance).  This is
        the check every packer in the paper uses.

        Raises:
            ValidationError: if the item's dimensionality differs from the
                bin's.
        """
        sizes = self._require_dims(item)
        limit = self.capacity + self.tol
        for profile, s in zip(self._profiles, sizes):
            if profile.max_over(item.interval) + s > limit:
                return False
        return True

    def fits_at_arrival(self, item: Item) -> bool:
        """Arrival-instant fit check: ``level(arrival) + s(item) <= capacity``.

        For *online arrival-order* packing the two checks coincide: a bin's
        committed level can only decrease after the current arrival because
        no future arrival has been committed yet.  Offline packers must use
        :meth:`fits`.  Both are exposed so tests can cross-validate them.
        """
        sizes = self._require_dims(item)
        limit = self.capacity + self.tol
        t = item.arrival
        for profile, s in zip(self._profiles, sizes):
            if profile.value_at(t) + s > limit:
                return False
        return True

    # -- mutation ------------------------------------------------------------------------

    def place(self, item: Item, *, check: bool = True) -> None:
        """Commit ``item`` to this bin.

        Args:
            item: The item to place.
            check: When True (default), verify the clairvoyant fit first.

        Raises:
            CapacityError: if ``check`` and the item does not fit at some time.
            ValidationError: on a dimensionality mismatch.
        """
        sizes = self._require_dims(item)
        if check and not self.fits(item):
            shown = item.sizes[0] if self.dims == 1 else list(item.sizes)
            raise CapacityError(
                f"item {item.id} (size {shown}) overflows bin {self.index} "
                f"during {item.interval}",
                time=self._first_overflow_time(item),
            )
        self._items.append(item)
        for profile, s in zip(self._profiles, sizes):
            profile.add(item.interval, s)
        self._absorb(item)

    def amend_last(self, actual: Item) -> None:
        """Swap the most recently placed item for ``actual`` (same id).

        The streaming engine and the noisy-clairvoyance simulator commit a
        *predicted* item and then amend it back to its actual interval, so
        bin state tracks real occupancy.  All caches are rebuilt (an amend
        may shrink the close time, which is not incrementally recoverable).

        Raises:
            ValidationError: if the bin is empty or the last item's id does
                not match (the packer broke the placement contract).
        """
        if not self._items or self._items[-1].id != actual.id:
            raise ValidationError(
                f"bin {self.index} did not receive item {actual.id} last; "
                f"cannot amend (packer broke the placement contract)"
            )
        sizes = self._require_dims(actual)
        committed = self._items[-1]
        self._items[-1] = actual
        for profile, old_s, new_s in zip(self._profiles, committed.sizes, sizes):
            profile.remove(committed.interval, old_s)
            profile.add(actual.interval, new_s)
        self._recompute_caches()

    def pop_last(self) -> Item:
        """Undo the most recent :meth:`place` and return the removed item.

        Used by the exact solvers' backtracking search.

        Raises:
            ValidationError: if the bin is empty.
        """
        if not self._items:
            raise ValidationError(f"bin {self.index} is empty; nothing to pop")
        item = self._items.pop()
        for profile, s in zip(self._profiles, item.sizes):
            profile.remove(item.interval, s)
        self._recompute_caches()
        return item

    def _absorb(self, item: Item) -> None:
        """Incrementally fold one new item into the cached aggregates."""
        a, d = item.arrival, item.departure
        if a < self._min_arrival:
            self._min_arrival = a
        if a > self._max_arrival:
            self._max_arrival = a
        if d > self._max_departure:
            self._max_departure = d
        self._merge_into_usage(item.interval)

    def _merge_into_usage(self, iv: Interval) -> None:
        """Insert ``iv`` into the sorted disjoint usage list, merging touching
        neighbours, and update the cached total usage length."""
        usage = self._usage
        left, right = iv.left, iv.right
        # Find the window of existing intervals that touch [left, right);
        # touching endpoints merge, matching half-open semantics.
        lo = bisect_left(usage, left, key=lambda u: u.right)
        hi = lo
        while hi < len(usage) and usage[hi].left <= right:
            hi += 1
        if lo == hi:  # disjoint from everything: plain insertion
            usage.insert(lo, iv)
            self._usage_time += iv.length
            return
        merged_left = min(left, usage[lo].left)
        merged_right = max(right, usage[hi - 1].right)
        removed = sum(u.length for u in usage[lo:hi])
        usage[lo:hi] = [Interval(merged_left, merged_right)]
        self._usage_time += (merged_right - merged_left) - removed

    def _recompute_caches(self) -> None:
        """Rebuild every cache from the item list (mutations that shrink)."""
        items = self._items
        self._min_arrival = min((r.arrival for r in items), default=_POS_INF)
        self._max_arrival = max((r.arrival for r in items), default=_NEG_INF)
        self._max_departure = max((r.departure for r in items), default=_NEG_INF)
        self._usage = merge_intervals(r.interval for r in items)
        self._usage_time = sum(iv.length for iv in self._usage)

    def check_invariants(self) -> None:
        """Verify every incremental cache against an exact recomputation.

        The engine's parity tests call this after each event; it is also a
        debugging aid for custom packers that mutate bins directly.

        Raises:
            ValidationError: on any cache/recompute mismatch.
        """
        for dim, profile in enumerate(self._profiles):
            exact_profile = StepFunction()
            for r in self._items:
                exact_profile.add(r.interval, r.sizes[dim])
            if not profile.equals(exact_profile):
                raise ValidationError(
                    f"bin {self.index}: cached profile (dim {dim}) diverged "
                    f"from exact recompute"
                )
        exact_usage = merge_intervals(r.interval for r in self._items)
        if [
            (round(u.left, 12), round(u.right, 12)) for u in self._usage
        ] != [(round(u.left, 12), round(u.right, 12)) for u in exact_usage]:
            raise ValidationError(
                f"bin {self.index}: cached usage intervals {self._usage} != "
                f"exact {exact_usage}"
            )
        exact_len = sum(iv.length for iv in exact_usage)
        if abs(self._usage_time - exact_len) > 1e-9 * max(1.0, exact_len):
            raise ValidationError(
                f"bin {self.index}: cached usage time {self._usage_time} != "
                f"exact {exact_len}"
            )
        if self._items:
            facts = (
                (self._min_arrival, min(r.arrival for r in self._items)),
                (self._max_arrival, max(r.arrival for r in self._items)),
                (self._max_departure, max(r.departure for r in self._items)),
            )
            for cached, exact in facts:
                if cached != exact:
                    raise ValidationError(
                        f"bin {self.index}: cached time {cached} != exact {exact}"
                    )

    def _first_overflow_time(self, item: Item) -> float | None:
        earliest: float | None = None
        limit = self.capacity + self.tol
        for profile, s in zip(self._profiles, item.sizes):
            for left, _right, value in profile.segments():
                if item.interval.left <= left < item.interval.right:
                    if value + s > limit:
                        if earliest is None or left < earliest:
                            earliest = left
                        break
        if earliest is not None:
            return earliest
        for profile, s in zip(self._profiles, item.sizes):
            if profile.value_at(item.arrival) + s > limit:
                return item.arrival
        return None

    # -- usage (the objective) ---------------------------------------------------------------

    def usage_intervals(self) -> list[Interval]:
        """Maximal disjoint intervals during which the bin is in use."""
        return list(self._usage)

    def usage_time(self) -> float:
        """``span`` of the committed items — this bin's usage-time cost."""
        return self._usage_time

    def open_time(self) -> float:
        """Time this bin first receives an item (its *opening*, paper §5).

        Raises:
            ValidationError: if the bin is empty.
        """
        if not self._items:
            raise ValidationError(f"bin {self.index} is empty")
        return self._min_arrival

    def close_time(self) -> float:
        """Time the last committed item departs (the bin *closes*)."""
        if not self._items:
            raise ValidationError(f"bin {self.index} is empty")
        return self._max_departure

    def is_open_at(self, t: float) -> bool:
        """True iff at least one committed item is active at ``t``.

        O(1) at or beyond the arrival frontier (every committed arrival is
        ``<= t``, so the bin is open iff its close time lies beyond ``t``);
        exact linear scan for queries in the past, where usage gaps matter.
        """
        if not self._items:
            return False
        if t < self._min_arrival:
            return False
        if t >= self._max_arrival:
            return t < self._max_departure
        return any(r.active_at(t) for r in self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bin(index={self.index}, items={len(self._items)})"


def bins_from_assignment(
    items: Iterable[Item],
    assignment: dict[int, int],
    *,
    capacity: float = 1.0,
    tol: float = DEFAULT_TOL,
    check: bool = False,
) -> list[Bin]:
    """Materialise :class:`Bin` objects from an item→bin-index assignment.

    Bin indices need not be contiguous; the result is ordered by index.
    The bins' dimensionality is taken from the items.
    """
    by_bin: dict[int, list[Item]] = {}
    dims = 1
    for item in items:
        dims = len(item.sizes)
        by_bin.setdefault(assignment[item.id], []).append(item)
    bins = []
    for index in sorted(by_bin):
        b = Bin(index, capacity=capacity, tol=tol, dims=dims)
        for item in sorted(by_bin[index], key=lambda r: (r.arrival, r.id)):
            b.place(item, check=check)
        bins.append(b)
    return bins
