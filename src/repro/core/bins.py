"""Bins (servers) with time-varying level profiles.

A :class:`Bin` accumulates committed items.  Its *level* at time ``t`` is the
total size of items active at ``t`` (paper §3.1); the level may never exceed
the capacity.  The clairvoyant fit check asks whether an item fits **for its
whole active interval**, which matters for offline packers (e.g. Duration
Descending First Fit) that insert items out of arrival order: the bin may
already hold commitments that lie in the new item's future.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .exceptions import CapacityError, ValidationError
from .intervals import Interval, merge_intervals
from .items import Item
from .stepfun import DEFAULT_TOL, StepFunction

__all__ = ["Bin"]


class Bin:
    """A unit-capacity bin holding committed items.

    Args:
        index: The bin's index in its packing (opening order).
        capacity: Bin capacity; the library's algorithms assume 1.0 (WLOG per
            paper §3.2) but the data structure supports any positive value.
        tol: Absolute tolerance used in capacity comparisons, absorbing float
            summation noise (e.g. ten items of size 0.1).
    """

    __slots__ = ("index", "capacity", "tol", "_items", "_profile")

    def __init__(self, index: int, capacity: float = 1.0, tol: float = DEFAULT_TOL) -> None:
        if capacity <= 0:
            raise ValidationError(f"bin capacity must be positive, got {capacity}")
        self.index = index
        self.capacity = capacity
        self.tol = tol
        self._items: list[Item] = []
        self._profile = StepFunction()

    # -- contents ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    @property
    def items(self) -> tuple[Item, ...]:
        """Items committed to this bin, in placement order."""
        return tuple(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    # -- levels -------------------------------------------------------------------

    def level_at(self, t: float) -> float:
        """Total size of committed items active at time ``t``."""
        return self._profile.value_at(t)

    def max_level_over(self, interval: Interval) -> float:
        """Maximum committed level over ``interval``."""
        return self._profile.max_over(interval)

    def level_profile(self) -> StepFunction:
        """A copy of the full level profile."""
        return self._profile.copy()

    def residual_at(self, t: float) -> float:
        """Free capacity at time ``t``."""
        return self.capacity - self.level_at(t)

    # -- fit checks ------------------------------------------------------------------

    def fits(self, item: Item) -> bool:
        """Clairvoyant fit check: does ``item`` fit *throughout its interval*?

        True iff for every ``t ∈ I(item)``, ``level(t) + s(item) <= capacity``
        (within tolerance).  This is the check every packer in the paper uses.
        """
        return (
            self.max_level_over(item.interval) + item.size <= self.capacity + self.tol
        )

    def fits_at_arrival(self, item: Item) -> bool:
        """Arrival-instant fit check: ``level(arrival) + s(item) <= capacity``.

        For *online arrival-order* packing the two checks coincide: a bin's
        committed level can only decrease after the current arrival because
        no future arrival has been committed yet.  Offline packers must use
        :meth:`fits`.  Both are exposed so tests can cross-validate them.
        """
        return self.level_at(item.arrival) + item.size <= self.capacity + self.tol

    # -- mutation ------------------------------------------------------------------------

    def place(self, item: Item, *, check: bool = True) -> None:
        """Commit ``item`` to this bin.

        Args:
            item: The item to place.
            check: When True (default), verify the clairvoyant fit first.

        Raises:
            CapacityError: if ``check`` and the item does not fit at some time.
        """
        if check and not self.fits(item):
            raise CapacityError(
                f"item {item.id} (size {item.size}) overflows bin {self.index} "
                f"during {item.interval}",
                time=self._first_overflow_time(item),
            )
        self._items.append(item)
        self._profile.add(item.interval, item.size)

    def _first_overflow_time(self, item: Item) -> float | None:
        for left, _right, value in self._profile.segments():
            if item.interval.left <= left < item.interval.right:
                if value + item.size > self.capacity + self.tol:
                    return left
        if self.level_at(item.arrival) + item.size > self.capacity + self.tol:
            return item.arrival
        return None

    # -- usage (the objective) ---------------------------------------------------------------

    def usage_intervals(self) -> list[Interval]:
        """Maximal disjoint intervals during which the bin is in use."""
        return merge_intervals(r.interval for r in self._items)

    def usage_time(self) -> float:
        """``span`` of the committed items — this bin's usage-time cost."""
        return sum(iv.length for iv in self.usage_intervals())

    def open_time(self) -> float:
        """Time this bin first receives an item (its *opening*, paper §5).

        Raises:
            ValidationError: if the bin is empty.
        """
        if not self._items:
            raise ValidationError(f"bin {self.index} is empty")
        return min(r.arrival for r in self._items)

    def close_time(self) -> float:
        """Time the last committed item departs (the bin *closes*)."""
        if not self._items:
            raise ValidationError(f"bin {self.index} is empty")
        return max(r.departure for r in self._items)

    def is_open_at(self, t: float) -> bool:
        """True iff at least one committed item is active at ``t``."""
        return any(r.active_at(t) for r in self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bin(index={self.index}, items={len(self._items)})"


def bins_from_assignment(
    items: Iterable[Item],
    assignment: dict[int, int],
    *,
    capacity: float = 1.0,
    tol: float = DEFAULT_TOL,
    check: bool = False,
) -> list[Bin]:
    """Materialise :class:`Bin` objects from an item→bin-index assignment.

    Bin indices need not be contiguous; the result is ordered by index.
    """
    by_bin: dict[int, list[Item]] = {}
    for item in items:
        by_bin.setdefault(assignment[item.id], []).append(item)
    bins = []
    for index in sorted(by_bin):
        b = Bin(index, capacity=capacity, tol=tol)
        for item in sorted(by_bin[index], key=lambda r: (r.arrival, r.id)):
            b.place(item, check=check)
        bins.append(b)
    return bins
