"""Arrival/departure event streams.

Online packers and the event-driven simulator consume items as a time-ordered
stream of events.  This module builds that stream from an :class:`ItemList`
with deterministic tie-breaking: at equal times, departures precede arrivals
(half-open intervals mean a departing item frees capacity *at* its departure
instant), and ties within a kind break by item id.
"""

from __future__ import annotations

import enum
import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterator

from .items import Item, ItemList

__all__ = [
    "EventKind",
    "Event",
    "event_stream",
    "EventHeap",
    "SizeSlice",
    "active_size_slices",
]


class EventKind(enum.IntEnum):
    """Event types, ordered so departures sort before arrivals at equal times."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure.

    Attributes:
        time: When the event occurs.
        kind: Arrival or departure.
        item: The item arriving or departing.
    """

    time: float
    kind: EventKind
    item: Item

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.item.id)


def event_stream(items: ItemList) -> Iterator[Event]:
    """Yield all arrival and departure events of ``items`` in time order.

    The ordering contract (departures first at equal times) is what makes
    back-to-back reuse of bin capacity work with half-open intervals: an item
    departing at ``t`` and another arriving at ``t`` may share capacity.
    """
    events = [Event(r.arrival, EventKind.ARRIVAL, r) for r in items]
    events.extend(Event(r.departure, EventKind.DEPARTURE, r) for r in items)
    events.sort(key=lambda e: e.sort_key)
    return iter(events)


@dataclass(frozen=True, slots=True)
class SizeSlice:
    """One elementary interval of the active-size sweep.

    Attributes:
        left: Slice start (an event time).
        right: Slice end (the next event time).
        sizes: Sizes of the items active on ``[left, right)``, sorted
            ascending — the canonical multiset key of the classical bin
            packing instance induced by the slice.
        added: Number of items that arrived at ``left`` (the delta against
            the previous slice's multiset used for warm-starting solvers).
    """

    left: float
    right: float
    sizes: tuple[float, ...]
    added: int

    @property
    def width(self) -> float:
        return self.right - self.left


def active_size_slices(items: ItemList) -> Iterator[SizeSlice]:
    """Sweep the event times of ``items``, yielding one slice per elementary
    interval with the active size multiset maintained incrementally.

    Between consecutive event times the set of active items is constant, so
    the whole timeline decomposes into ``len(event_times) - 1`` slices.  The
    sweep keeps the active sizes in a sorted list and applies each event with
    one :func:`bisect.bisect_left` / :func:`bisect.insort` — O(log n) search
    per event instead of the O(n) full rescan per slice that a naive
    ``[r.size for r in items if r.active_at(t)]`` costs.

    Half-open interval semantics: at a boundary ``t``, items departing at
    ``t`` are removed *before* items arriving at ``t`` are added, matching
    :class:`EventKind` ordering and ``Item.active_at``.
    """
    times = items.event_times()
    if len(times) < 2:
        return
    arrivals: dict[float, list[float]] = {}
    departures: dict[float, list[float]] = {}
    for r in items:
        arrivals.setdefault(r.arrival, []).append(r.size)
        departures.setdefault(r.departure, []).append(r.size)
    active: list[float] = []
    for left, right in zip(times[:-1], times[1:]):
        for s in departures.get(left, ()):
            del active[bisect_left(active, s)]
        added = arrivals.get(left, ())
        for s in added:
            insort(active, s)
        yield SizeSlice(left, right, tuple(active), len(added))


class EventHeap:
    """A priority queue of :class:`Event` objects ordered by ``sort_key``.

    The incremental counterpart of :func:`event_stream`: the streaming engine
    pushes each item's departure event as the item is submitted and drains
    all events due by the advancing clock in O(log n) per event, instead of
    re-sorting the whole stream.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert one event."""
        heapq.heappush(self._heap, (event.sort_key, event))

    def peek_time(self) -> float | None:
        """The earliest pending event time, or ``None`` when empty."""
        return self._heap[0][0][0] if self._heap else None

    def pop_until(self, t: float) -> Iterator[Event]:
        """Yield (and remove) every pending event with ``time <= t``, in order.

        The inclusive cut matches half-open interval semantics: an item
        departing *at* ``t`` is no longer active at ``t``, so its departure
        event is due.
        """
        heap = self._heap
        while heap and heap[0][0][0] <= t:
            yield heapq.heappop(heap)[1]
