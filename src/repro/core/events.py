"""Arrival/departure event streams.

Online packers and the event-driven simulator consume items as a time-ordered
stream of events.  This module builds that stream from an :class:`ItemList`
with deterministic tie-breaking: at equal times, departures precede arrivals
(half-open intervals mean a departing item frees capacity *at* its departure
instant), and ties within a kind break by item id.
"""

from __future__ import annotations

import enum
import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .exceptions import ValidationError
from .items import Item, ItemList

__all__ = [
    "EventKind",
    "Event",
    "EventArrays",
    "event_stream",
    "EventHeap",
    "SizeSlice",
    "active_size_slices",
]


class EventKind(enum.IntEnum):
    """Event types, ordered so departures sort before arrivals at equal times."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure.

    Attributes:
        time: When the event occurs.
        kind: Arrival or departure.
        item: The item arriving or departing.
    """

    time: float
    kind: EventKind
    item: Item

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.item.id)


def event_stream(items: ItemList) -> Iterator[Event]:
    """Yield all arrival and departure events of ``items`` in time order.

    The ordering contract (departures first at equal times) is what makes
    back-to-back reuse of bin capacity work with half-open intervals: an item
    departing at ``t`` and another arriving at ``t`` may share capacity.
    """
    events = [Event(r.arrival, EventKind.ARRIVAL, r) for r in items]
    events.extend(Event(r.departure, EventKind.DEPARTURE, r) for r in items)
    events.sort(key=lambda e: e.sort_key)
    return iter(events)


@dataclass(frozen=True, slots=True)
class SizeSlice:
    """One elementary interval of the active-size sweep.

    Attributes:
        left: Slice start (an event time).
        right: Slice end (the next event time).
        sizes: Sizes of the items active on ``[left, right)``, sorted
            ascending — the canonical multiset key of the classical bin
            packing instance induced by the slice.
        added: Number of items that arrived at ``left`` (the delta against
            the previous slice's multiset used for warm-starting solvers).
    """

    left: float
    right: float
    sizes: tuple[float, ...]
    added: int

    @property
    def width(self) -> float:
        return self.right - self.left


def _uniq_sorted(values: np.ndarray) -> np.ndarray:
    """Unique values of an already-sorted float array (adjacent compare)."""
    if len(values) == 0:
        return values
    mask = np.empty(len(values), dtype=bool)
    mask[0] = True
    np.not_equal(values[1:], values[:-1], out=mask[1:])
    return values[mask]


class EventArrays:
    """Presorted columnar event timeline of an :class:`ItemList`.

    The sweep-line substrate built once per instance: every arrival and
    departure time in one sorted float64 array (``times_all``, with
    multiplicity), the unique slice boundaries (``times``, python floats —
    exactly ``ItemList.event_times()``), and — for scalar items — the item
    sizes argsorted by arrival and by departure with per-boundary offset
    arrays, so each slice's multiset delta is an O(1) array slice instead of
    a dict lookup over per-item Python objects.

    The adversary's incremental oracle reuses the presorted ``times_all``
    across mutations via :meth:`retimed` instead of re-sorting the whole
    timeline per candidate (the ``opt_total_incremental`` hot loop).

    Attributes:
        times_all: ``(2n,)`` sorted float64 event times, with multiplicity.
        times: Unique boundaries as a list of python floats, identical to
            ``ItemList.event_times()``.
    """

    __slots__ = (
        "times_all",
        "times",
        "_a_sizes",
        "_a_lo",
        "_a_hi",
        "_d_sizes",
        "_d_lo",
        "_d_hi",
    )

    def __init__(self) -> None:
        """Empty timeline; use :meth:`from_items` / :meth:`retimed`."""
        self.times_all = np.empty(0, dtype=np.float64)
        self.times: list[float] = []
        self._a_sizes = self._a_lo = self._a_hi = None
        self._d_sizes = self._d_lo = self._d_hi = None

    @classmethod
    def from_items(cls, items: ItemList) -> "EventArrays":
        """Build the full sweep substrate from scalar items (argsort once).

        Raises:
            ValidationError: for ``d > 1`` items, where the scalar active-size
                sweep is undefined (same error as the object sweep).
        """
        n = len(items)
        ev = cls()
        if n == 0:
            return ev
        arr = np.fromiter((r.arrival for r in items), dtype=np.float64, count=n)
        dep = np.fromiter((r.departure for r in items), dtype=np.float64, count=n)
        ev.times_all = np.sort(np.concatenate((arr, dep)))
        boundaries = _uniq_sorted(ev.times_all)
        ev.times = boundaries.tolist()
        sizes = np.fromiter((r.size for r in items), dtype=np.float64, count=n)
        order = np.argsort(arr, kind="stable")
        arr_sorted = arr[order]
        ev._a_sizes = sizes[order]
        ev._a_lo = np.searchsorted(arr_sorted, boundaries, side="left")
        ev._a_hi = np.searchsorted(arr_sorted, boundaries, side="right")
        order = np.argsort(dep, kind="stable")
        dep_sorted = dep[order]
        ev._d_sizes = sizes[order]
        ev._d_lo = np.searchsorted(dep_sorted, boundaries, side="left")
        ev._d_hi = np.searchsorted(dep_sorted, boundaries, side="right")
        return ev

    def retimed(
        self, removed: Iterable[Item], added: Iterable[Item]
    ) -> "EventArrays":
        """A boundaries-only timeline with some items' times swapped out.

        Deletes one ``times_all`` occurrence per event of each removed item
        and merge-inserts the added items' events — O(k log n) searchsorted
        work on the presorted array instead of an O(n log n) re-sort.  The
        result carries ``times_all``/``times`` only (no size arrays): it is
        the boundary timeline the incremental adversary walks with its own
        active set.

        Raises:
            ValidationError: when a removed event time is not present in the
                timeline (the base timeline does not match ``removed``).
        """
        rem_list: list[float] = []
        for r in removed:
            rem_list.append(r.arrival)
            rem_list.append(r.departure)
        add_list: list[float] = []
        for r in added:
            add_list.append(r.arrival)
            add_list.append(r.departure)
        base = self.times_all
        if rem_list:
            rem = np.sort(np.asarray(rem_list, dtype=np.float64))
            pos = np.searchsorted(base, rem, side="left")
            # Spread duplicate removed values across the matching run.
            pos = pos + (np.arange(len(rem)) - np.searchsorted(rem, rem, side="left"))
            if (pos >= len(base)).any() or not np.array_equal(base[pos], rem):
                raise ValidationError(
                    "retimed: a removed item's event time is not in the timeline"
                )
            base = np.delete(base, pos)
        if add_list:
            add = np.sort(np.asarray(add_list, dtype=np.float64))
            base = np.insert(base, np.searchsorted(base, add, side="left"), add)
        ev = EventArrays()
        ev.times_all = base
        ev.times = _uniq_sorted(base).tolist()
        return ev

    def slices(self) -> Iterator[SizeSlice]:
        """Sweep the prebuilt arrays, yielding one slice per elementary interval.

        Yields exactly what the object sweep yields — same boundaries, same
        ascending size tuples, same ``added`` counts (the within-boundary
        application order differs but the multiset per slice is identical,
        hence the sorted tuple is too).
        """
        times = self.times
        if len(times) < 2:
            return
        if self._a_sizes is None:
            raise ValidationError(
                "this EventArrays holds boundaries only (from retimed); "
                "build with from_items to sweep sizes"
            )
        a_sizes = self._a_sizes.tolist()
        d_sizes = self._d_sizes.tolist()
        a_lo = self._a_lo.tolist()
        a_hi = self._a_hi.tolist()
        d_lo = self._d_lo.tolist()
        d_hi = self._d_hi.tolist()
        active: list[float] = []
        for k in range(len(times) - 1):
            left = times[k]
            for s in d_sizes[d_lo[k] : d_hi[k]]:
                del active[bisect_left(active, s)]
            for s in a_sizes[a_lo[k] : a_hi[k]]:
                insort(active, s)
            yield SizeSlice(left, times[k + 1], tuple(active), a_hi[k] - a_lo[k])


def _slices_object(items: ItemList) -> Iterator[SizeSlice]:
    """The original per-object sweep, kept as the parity reference."""
    times = items.event_times()
    if len(times) < 2:
        return
    arrivals: dict[float, list[float]] = {}
    departures: dict[float, list[float]] = {}
    for r in items:
        arrivals.setdefault(r.arrival, []).append(r.size)
        departures.setdefault(r.departure, []).append(r.size)
    active: list[float] = []
    for left, right in zip(times[:-1], times[1:]):
        for s in departures.get(left, ()):
            del active[bisect_left(active, s)]
        added = arrivals.get(left, ())
        for s in added:
            insort(active, s)
        yield SizeSlice(left, right, tuple(active), len(added))


def _slices_columnar(items: ItemList) -> Iterator[SizeSlice]:
    """Columnar sweep: build :class:`EventArrays` lazily, then walk it."""
    yield from EventArrays.from_items(items).slices()


def active_size_slices(
    items: ItemList, *, engine: str | None = None
) -> Iterator[SizeSlice]:
    """Sweep the event times of ``items``, yielding one slice per elementary
    interval with the active size multiset maintained incrementally.

    Between consecutive event times the set of active items is constant, so
    the whole timeline decomposes into ``len(event_times) - 1`` slices.  The
    default ``columnar`` engine presorts all event times and sizes into numpy
    arrays once (:class:`EventArrays`) and reads each boundary's multiset
    delta as an array slice; the ``object`` engine is the original
    dict-of-lists sweep, kept as the parity reference.  Both yield identical
    slices — boundaries, ascending size tuples and ``added`` counts — which
    the event-sweep tests assert on random instances.

    Half-open interval semantics: at a boundary ``t``, items departing at
    ``t`` are removed *before* items arriving at ``t`` are added, matching
    :class:`EventKind` ordering and ``Item.active_at``.

    Args:
        items: The (scalar) items to sweep.
        engine: ``"columnar"`` (default, ``None``) or ``"object"``.

    Raises:
        ValidationError: for an unknown engine name, or lazily for ``d > 1``
            items (the scalar active-size sweep is undefined).
    """
    if engine is None or engine == "columnar":
        return _slices_columnar(items)
    if engine == "object":
        return _slices_object(items)
    raise ValidationError(
        f"unknown slice engine {engine!r}; expected 'columnar' or 'object'"
    )


class EventHeap:
    """A priority queue of :class:`Event` objects ordered by ``sort_key``.

    The incremental counterpart of :func:`event_stream`: the streaming engine
    pushes each item's departure event as the item is submitted and drains
    all events due by the advancing clock in O(log n) per event, instead of
    re-sorting the whole stream.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert one event."""
        heapq.heappush(self._heap, (event.sort_key, event))

    def peek_time(self) -> float | None:
        """The earliest pending event time, or ``None`` when empty."""
        return self._heap[0][0][0] if self._heap else None

    def pop_until(self, t: float) -> Iterator[Event]:
        """Yield (and remove) every pending event with ``time <= t``, in order.

        The inclusive cut matches half-open interval semantics: an item
        departing *at* ``t`` is no longer active at ``t``, so its departure
        event is due.
        """
        heap = self._heap
        while heap and heap[0][0][0] <= t:
            yield heapq.heappop(heap)[1]
