"""Arrival/departure event streams.

Online packers and the event-driven simulator consume items as a time-ordered
stream of events.  This module builds that stream from an :class:`ItemList`
with deterministic tie-breaking: at equal times, departures precede arrivals
(half-open intervals mean a departing item frees capacity *at* its departure
instant), and ties within a kind break by item id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .items import Item, ItemList

__all__ = ["EventKind", "Event", "event_stream"]


class EventKind(enum.IntEnum):
    """Event types, ordered so departures sort before arrivals at equal times."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure.

    Attributes:
        time: When the event occurs.
        kind: Arrival or departure.
        item: The item arriving or departing.
    """

    time: float
    kind: EventKind
    item: Item

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, int(self.kind), self.item.id)


def event_stream(items: ItemList) -> Iterator[Event]:
    """Yield all arrival and departure events of ``items`` in time order.

    The ordering contract (departures first at equal times) is what makes
    back-to-back reuse of bin capacity work with half-open intervals: an item
    departing at ``t`` and another arriving at ``t`` may share capacity.
    """
    events = [Event(r.arrival, EventKind.ARRIVAL, r) for r in items]
    events.extend(Event(r.departure, EventKind.DEPARTURE, r) for r in items)
    events.sort(key=lambda e: e.sort_key)
    return iter(events)
