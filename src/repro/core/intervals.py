"""Half-open time intervals and interval-set utilities.

The paper views every active interval as half-open, ``I = [I^-, I^+)``
(§3.1).  This module provides the :class:`Interval` value type used for item
active intervals, bin usage periods and demand-chart bookkeeping, plus the
set-level helpers the analysis needs: span (length of a union of intervals),
union decomposition into disjoint pieces, and intersection.

Numbers are whatever supports ``+``/``-``/comparison — floats everywhere in
the general library, :class:`fractions.Fraction` inside the Dual Coloring
algorithm which needs exact arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .exceptions import ValidationError

__all__ = ["Interval", "span", "merge_intervals", "total_length", "intersect_many"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[left, right)``.

    Instances are immutable, ordered lexicographically by ``(left, right)``,
    and hashable, so they can be used as dict keys and in sets.

    Raises:
        ValidationError: if ``right <= left`` (empty and inverted intervals
            are rejected; use :meth:`Interval.maybe` when a possibly-empty
            result is acceptable).
    """

    left: float
    right: float

    def __post_init__(self) -> None:
        if not self.right > self.left:  # also rejects NaN endpoints
            raise ValidationError(
                f"interval must satisfy left < right, got [{self.left}, {self.right})"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def maybe(cls, left: float, right: float) -> "Interval | None":
        """Return ``Interval(left, right)`` or ``None`` if it would be empty."""
        return cls(left, right) if right > left else None

    @classmethod
    def of_length(cls, left: float, length: float) -> "Interval":
        """Interval starting at ``left`` with the given positive ``length``."""
        return cls(left, left + length)

    # -- basic properties ---------------------------------------------------

    @property
    def length(self) -> float:
        """``right - left`` — the duration ``l(I)`` of the paper."""
        return self.right - self.left

    def __contains__(self, t: object) -> bool:
        """Membership of a time point: ``t in I`` iff ``left <= t < right``."""
        try:
            return self.left <= t < self.right  # type: ignore[operator]
        except TypeError:
            return NotImplemented  # type: ignore[return-value]

    def __iter__(self) -> Iterator[float]:
        yield self.left
        yield self.right

    # -- relations ----------------------------------------------------------

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two half-open intervals share at least one point."""
        return self.left < other.right and other.left < self.right

    def contains_interval(self, other: "Interval") -> bool:
        """True iff ``other ⊆ self``."""
        return self.left <= other.left and other.right <= self.right

    def properly_contains(self, other: "Interval") -> bool:
        """True iff ``other ⊆ self`` and ``other != self``.

        "Properly contained" is the relation used when reducing a bin's item
        set ``R_k`` to ``R'_k`` in the Theorem 1 analysis.
        """
        return self.contains_interval(other) and self != other

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or ``None`` if they are disjoint."""
        left = max(self.left, other.left)
        right = min(self.right, other.right)
        return Interval.maybe(left, right)

    def shift(self, delta: float) -> "Interval":
        """This interval translated by ``delta``."""
        return Interval(self.left + delta, self.right + delta)

    def clamp(self, window: "Interval") -> "Interval | None":
        """Alias of :meth:`intersection` that reads better for windowing."""
        return self.intersection(window)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.left}, {self.right})"


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Decompose a union of intervals into sorted, disjoint, maximal pieces.

    Touching intervals (``a.right == b.left``) are merged, matching half-open
    semantics: ``[0,1) ∪ [1,2) = [0,2)``.

    Returns:
        Sorted list of pairwise-disjoint intervals whose union equals the
        union of the inputs.  Empty input yields an empty list.
    """
    items = sorted(intervals, key=lambda iv: (iv.left, iv.right))
    if not items:
        return []
    merged: list[Interval] = []
    cur_left, cur_right = items[0].left, items[0].right
    for iv in items[1:]:
        if iv.left <= cur_right:
            if iv.right > cur_right:
                cur_right = iv.right
        else:
            merged.append(Interval(cur_left, cur_right))
            cur_left, cur_right = iv.left, iv.right
    merged.append(Interval(cur_left, cur_right))
    return merged


def total_length(intervals: Sequence[Interval]) -> float:
    """Sum of lengths of a *disjoint* interval list (no overlap checking)."""
    return sum(iv.length for iv in intervals)


def span(intervals: Iterable[Interval]) -> float:
    """Length of the union of the intervals — ``span(R)`` of the paper (§3.1).

    This is the "usage time" contribution of one bin: the measure of times at
    which at least one of the given intervals is active.
    """
    return total_length(merge_intervals(intervals))


def intersect_many(intervals: Sequence[Interval]) -> Interval | None:
    """Common intersection of all given intervals (``None`` if empty).

    Raises:
        ValidationError: on an empty input sequence, for which the
            intersection is ill-defined.
    """
    if not intervals:
        raise ValidationError("intersect_many() requires at least one interval")
    left = max(iv.left for iv in intervals)
    right = min(iv.right for iv in intervals)
    return Interval.maybe(left, right)
