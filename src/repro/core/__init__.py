"""Core substrate: intervals, step functions, items, bins and packings."""

from .batch import ArrivalBatch
from .bins import Bin, bins_from_assignment
from .events import (
    Event,
    EventArrays,
    EventHeap,
    EventKind,
    SizeSlice,
    active_size_slices,
    event_stream,
)
from .exceptions import (
    CapacityError,
    DeadlineExceeded,
    InfeasibleError,
    RegistryError,
    ReproError,
    SolverLimitError,
    UnknownPackerError,
    ValidationError,
)
from .intervals import Interval, intersect_many, merge_intervals, span, total_length
from .items import Item, ItemList
from .packing import PackingResult, PackingStats
from .soa import IntVector, SoAFitChecker
from .stepfun import DEFAULT_TOL, StepFunction, iceil

__all__ = [
    "ArrivalBatch",
    "Bin",
    "bins_from_assignment",
    "Event",
    "EventArrays",
    "EventHeap",
    "EventKind",
    "SizeSlice",
    "active_size_slices",
    "event_stream",
    "CapacityError",
    "DeadlineExceeded",
    "InfeasibleError",
    "RegistryError",
    "ReproError",
    "SolverLimitError",
    "UnknownPackerError",
    "ValidationError",
    "Interval",
    "intersect_many",
    "merge_intervals",
    "span",
    "total_length",
    "Item",
    "ItemList",
    "PackingResult",
    "PackingStats",
    "IntVector",
    "SoAFitChecker",
    "DEFAULT_TOL",
    "StepFunction",
    "iceil",
]
