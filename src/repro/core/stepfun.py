"""Piecewise-constant functions of time (step functions).

A :class:`StepFunction` maps every time point to a number and is zero outside
finitely many breakpoints.  It is the workhorse substrate of this library:

* a bin's *level profile* (total size of committed active items over time),
* the *demand chart* height ``S_S(t)`` of the Dual Coloring algorithm,
* the *open-bin count* profile of a packing,
* the Proposition 3 lower bound ``∫ ⌈S(t)⌉ dt``.

The implementation keeps sorted breakpoints with deltas and a lazily rebuilt
cumulative-value numpy array, so mutation is ``O(n)`` per rectangle (list
insertion) and queries (value/max/integral) are ``O(log n)`` plus a vectorised
scan — following the HPC guideline of vectorising hot read paths while keeping
the mutation path simple and obviously correct.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

import numpy as np

from .exceptions import ValidationError
from .intervals import Interval

__all__ = ["StepFunction", "iceil"]

#: Default absolute tolerance used when ceiling float level sums.  Sizes are
#: user-supplied floats; sums like ``0.1 * 10`` may land a hair above an
#: integer, and a naive ``ceil`` would then overcount open bins by one.
DEFAULT_TOL = 1e-9


def iceil(x: float, tol: float = DEFAULT_TOL) -> int:
    """Integer ceiling that forgives float noise within ``tol``.

    ``iceil(3.0000000001) == 3`` while ``iceil(3.1) == 4``.
    """
    nearest = round(x)
    if abs(x - nearest) <= tol:
        return int(nearest)
    return math.ceil(x)


class StepFunction:
    """A mutable piecewise-constant function with compact support.

    The function is represented by breakpoints ``t_0 < t_1 < ...`` and deltas;
    its value at time ``t`` is the sum of all deltas at breakpoints ``<= t``.
    All mass must cancel out eventually (every ``add`` spans a finite
    interval), so the function is zero at ``±∞``.
    """

    __slots__ = ("_times", "_deltas", "_cum", "_dirty")

    def __init__(self) -> None:
        self._times: list[float] = []
        self._deltas: list[float] = []
        self._cum: np.ndarray | None = None
        self._dirty = True

    # -- mutation ------------------------------------------------------------

    def add(self, interval: Interval, height: float) -> None:
        """Add ``height`` to the function over ``interval`` (a rectangle)."""
        self.add_range(interval.left, interval.right, height)

    def add_range(self, left: float, right: float, height: float) -> None:
        """Add ``height`` over ``[left, right)``.

        Raises:
            ValidationError: if ``right <= left``.
        """
        if not right > left:
            raise ValidationError(f"add_range needs left < right, got [{left}, {right})")
        if height == 0:
            return
        self._bump(left, height)
        self._bump(right, -height)
        self._dirty = True

    def remove(self, interval: Interval, height: float) -> None:
        """Subtract a previously added rectangle (no bookkeeping is checked)."""
        self.add_range(interval.left, interval.right, -height)

    def _bump(self, t: float, delta: float) -> None:
        i = bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            self._deltas[i] += delta
            if self._deltas[i] == 0:
                # Drop exact-zero breakpoints to keep the representation tight.
                del self._times[i]
                del self._deltas[i]
        else:
            self._times.insert(i, t)
            self._deltas.insert(i, delta)

    # -- cached cumulative values ---------------------------------------------

    def _values(self) -> np.ndarray:
        """Cumulative value after each breakpoint (rebuilt lazily)."""
        if self._dirty or self._cum is None:
            self._cum = (
                np.cumsum(np.asarray(self._deltas, dtype=float))
                if self._deltas
                else np.empty(0, dtype=float)
            )
            self._dirty = False
        return self._cum

    # -- queries ---------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._times)

    @property
    def breakpoints(self) -> Sequence[float]:
        """Sorted times at which the function's value may change."""
        return tuple(self._times)

    def value_at(self, t: float) -> float:
        """Function value at time ``t`` (right-continuous: jumps take effect *at* t)."""
        i = bisect_right(self._times, t) - 1
        if i < 0:
            return 0.0
        return float(self._values()[i])

    def segments(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(left, right, value)`` for each maximal constant piece.

        Only pieces between the first and last breakpoint are yielded; the
        function is zero outside.  Zero-valued interior pieces are included.
        """
        vals = self._values()
        for i in range(len(self._times) - 1):
            yield self._times[i], self._times[i + 1], float(vals[i])

    def max_over(self, interval: Interval) -> float:
        """Maximum of the function over ``[interval.left, interval.right)``."""
        times = self._times
        if not times:
            return 0.0
        vals = self._values()
        # Segment that contains interval.left:
        i0 = bisect_right(times, interval.left) - 1
        # Last breakpoint strictly inside [left, right):
        i1 = bisect_left(times, interval.right) - 1
        best = 0.0 if i0 < 0 else float(vals[i0])
        if i1 > i0:
            start = max(i0 + 1, 0)
            window = vals[start : i1 + 1]
            if window.size:
                best = max(best, float(window.max()))
        if i0 < 0 and i1 < 0:
            return 0.0
        return best

    def max_value(self) -> float:
        """Global maximum of the function (0 for the empty function)."""
        vals = self._values()
        if vals.size == 0:
            return 0.0
        return float(max(vals.max(), 0.0))

    def integral(self) -> float:
        """``∫ f`` over the whole line (well-defined: compact support)."""
        vals = self._values()
        if vals.size == 0:
            return 0.0
        widths = np.diff(np.asarray(self._times, dtype=float))
        return float(np.dot(widths, vals[:-1]))

    def integral_over(self, interval: Interval) -> float:
        """``∫_interval f``."""
        total = 0.0
        for left, right, value in self._clipped_segments(interval):
            total += (right - left) * value
        return total

    def integral_ceil(self, tol: float = DEFAULT_TOL) -> float:
        """``∫ ⌈f⌉`` over the support of ``f > 0`` — Proposition 3's integrand.

        Negative pieces contribute nothing (``⌈v⌉ = 0`` is used for ``v <= 0``;
        the library never builds negative profiles in practice).
        """
        vals = self._values()
        if vals.size == 0:
            return 0.0
        times = np.asarray(self._times, dtype=float)
        widths = np.diff(times)
        ceils = np.array([max(iceil(v, tol), 0) for v in vals[:-1]], dtype=float)
        return float(np.dot(widths, ceils))

    def support_measure(self, tol: float = DEFAULT_TOL) -> float:
        """Measure of ``{t : f(t) > tol}`` — e.g. the span of a demand profile."""
        vals = self._values()
        if vals.size == 0:
            return 0.0
        times = np.asarray(self._times, dtype=float)
        widths = np.diff(times)
        mask = vals[:-1] > tol
        return float(widths[mask].sum())

    def support_intervals(self, tol: float = DEFAULT_TOL) -> list[Interval]:
        """Maximal intervals on which the function exceeds ``tol``."""
        out: list[Interval] = []
        cur_left: float | None = None
        cur_right: float | None = None
        for left, right, value in self.segments():
            if value > tol:
                if cur_left is None:
                    cur_left, cur_right = left, right
                elif left == cur_right:
                    cur_right = right
                else:
                    out.append(Interval(cur_left, cur_right))
                    cur_left, cur_right = left, right
        if cur_left is not None:
            assert cur_right is not None
            out.append(Interval(cur_left, cur_right))
        return out

    def _clipped_segments(self, interval: Interval) -> Iterator[tuple[float, float, float]]:
        for left, right, value in self.segments():
            lo = max(left, interval.left)
            hi = min(right, interval.right)
            if hi > lo:
                yield lo, hi, value

    # -- conveniences ------------------------------------------------------------

    def equals(self, other: "StepFunction", tol: float = DEFAULT_TOL) -> bool:
        """Pointwise equality within ``tol`` (used by cache invariant checks).

        Two step functions are equal iff they agree (within ``tol``) on every
        piece induced by the union of their breakpoints.
        """
        times = sorted(set(self._times) | set(other._times))
        return all(abs(self.value_at(t) - other.value_at(t)) <= tol for t in times)

    def copy(self) -> "StepFunction":
        """An independent copy of this function."""
        out = StepFunction()
        out._times = list(self._times)
        out._deltas = list(self._deltas)
        out._dirty = True
        return out

    def __add__(self, other: "StepFunction") -> "StepFunction":
        """Pointwise sum of two step functions (new object)."""
        out = self.copy()
        for t, d in zip(other._times, other._deltas):
            out._bump(t, d)
        out._dirty = True
        return out

    def scaled(self, factor: float) -> "StepFunction":
        """Pointwise multiple ``factor·f`` (new object)."""
        out = StepFunction()
        if factor != 0:
            out._times = list(self._times)
            out._deltas = [d * factor for d in self._deltas]
        out._dirty = True
        return out

    def shifted(self, delta: float) -> "StepFunction":
        """Time-translated copy ``f(t - delta)``."""
        out = StepFunction()
        out._times = [t + delta for t in self._times]
        out._deltas = list(self._deltas)
        out._dirty = True
        return out

    def clipped(self, window: Interval) -> "StepFunction":
        """Restriction to ``window`` (zero outside; new object)."""
        out = StepFunction()
        for left, right, value in self._clipped_segments(window):
            if value != 0:
                out.add_range(left, right, value)
        return out

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`value_at` over an array of query times."""
        arr = np.asarray(times, dtype=float)
        if not self._times:
            return np.zeros_like(arr)
        idx = np.searchsorted(np.asarray(self._times, dtype=float), arr, side="right") - 1
        vals = self._values()
        out = np.where(idx >= 0, vals[np.clip(idx, 0, None)], 0.0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pieces = ", ".join(f"[{l},{r})={v:g}" for l, r, v in self.segments())
        return f"StepFunction({pieces})"
