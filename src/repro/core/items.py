"""Items (jobs) and item lists for MinUsageTime Dynamic Bin Packing.

An :class:`Item` is the paper's ``r``: a size vector ``s(r) ∈ (0, 1]^d`` and
a half-open active interval ``I(r)``.  The scalar problem of the paper's main
body is the ``d = 1`` degenerate case — :attr:`Item.size` exposes the single
coordinate and every scalar API keeps working unchanged — while §6's
multi-resource extension uses ``d > 1`` vectors (CPU/memory/network demands).

An :class:`ItemList` is the paper's ``R`` with the derived quantities the
analysis uses everywhere:

* ``d(R)`` — total time-space demand ``Σ s(r)·l(I(r))`` (Proposition 1);
  for vector instances the maximum over dimensions, since every dimension is
  independently a lower bound,
* ``span(R)`` — measure of times with at least one active item (Prop. 2),
* ``mu`` — max/min item-duration ratio ``μ``,
* the per-dimension total-active-size profile ``S(t)`` (Proposition 3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from numbers import Real
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .exceptions import ValidationError
from .intervals import Interval, merge_intervals, span as _span
from .stepfun import StepFunction

__all__ = ["Item", "ItemList"]


@dataclass(frozen=True, slots=True)
class Item:
    """A job to pack: identifier, resource demand vector and active interval.

    Attributes:
        id: Unique identifier within an :class:`ItemList`.
        sizes: Resource demand per dimension; every coordinate must lie in
            ``(0, capacity]`` where the bin capacity is 1 throughout the
            library (paper §3.2 WLOG).  A bare ``float`` is accepted and
            normalised to a 1-tuple, so the scalar constructor calls used
            throughout the paper's main body — ``Item(0, 0.5, iv)`` — keep
            working verbatim.
        interval: Half-open active interval ``[arrival, departure)``.
        tags: Optional free-form metadata (e.g. the job template that
            generated the item); ignored by all algorithms.
    """

    id: int
    sizes: tuple[float, ...]
    interval: Interval
    tags: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        raw = self.sizes
        if isinstance(raw, Real):
            sizes = (float(raw),)
        else:
            try:
                sizes = tuple(float(s) for s in raw)
            except TypeError:
                raise ValidationError(
                    f"item {self.id}: sizes must be a number or a sequence of "
                    f"numbers, got {raw!r}"
                ) from None
        if not sizes:
            raise ValidationError(f"item {self.id}: sizes must have at least one dimension")
        object.__setattr__(self, "sizes", sizes)
        if len(sizes) == 1:
            if not (0.0 < sizes[0] <= 1.0):
                raise ValidationError(
                    f"item {self.id}: size must be in (0, 1], got {sizes[0]}"
                )
        else:
            for d, s in enumerate(sizes):
                if not (0.0 < s <= 1.0):
                    raise ValidationError(
                        f"item {self.id}: sizes[{d}] must be in (0, 1], got {s}"
                    )

    # Convenience accessors mirroring the paper's notation -------------------

    @property
    def size(self) -> float:
        """``s(r)`` — the scalar size of a one-dimensional item.

        Raises:
            ValidationError: on a ``d > 1`` item, where a single scalar size
                is undefined; use :attr:`sizes` instead.
        """
        sizes = self.sizes
        if len(sizes) != 1:
            raise ValidationError(
                f"item {self.id} is {len(sizes)}-dimensional; "
                f"scalar .size is undefined, use .sizes"
            )
        return sizes[0]

    @property
    def dims(self) -> int:
        """Number of resource dimensions ``d``."""
        return len(self.sizes)

    @property
    def arrival(self) -> float:
        """``I(r)^-``."""
        return self.interval.left

    @property
    def departure(self) -> float:
        """``I(r)^+``."""
        return self.interval.right

    @property
    def duration(self) -> float:
        """``l(I(r))``."""
        return self.interval.length

    @property
    def demand(self) -> float:
        """Time-space demand ``s(r) · l(I(r))`` (scalar items only)."""
        return self.size * self.duration

    @property
    def demands(self) -> tuple[float, ...]:
        """Per-dimension time-space demand ``s_d(r) · l(I(r))``."""
        dur = self.duration
        return tuple(s * dur for s in self.sizes)

    def active_at(self, t: float) -> bool:
        """True iff the item is active at time ``t`` (half-open semantics)."""
        return t in self.interval

    def shift(self, delta: float) -> "Item":
        """A copy of this item translated in time by ``delta``."""
        return Item(self.id, self.sizes, self.interval.shift(delta), dict(self.tags))

    def with_departure(self, departure: float) -> "Item":
        """A copy with a different departure time (same id/sizes/arrival)."""
        return Item(self.id, self.sizes, Interval(self.arrival, departure), dict(self.tags))


class ItemList:
    """An immutable, validated list of items with cached aggregate statistics.

    Items are stored in arrival order (ties broken by id) — the order in which
    an online algorithm sees them.  The constructor checks id uniqueness and
    that every item has the same dimensionality.
    """

    __slots__ = ("_items", "_by_id", "_dims", "_size_profile_cache")

    def __init__(self, items: Iterable[Item]):
        ordered = sorted(items, key=lambda r: (r.arrival, r.id))
        by_id: dict[int, Item] = {}
        dims: int | None = None
        for item in ordered:
            if item.id in by_id:
                raise ValidationError(f"duplicate item id {item.id}")
            by_id[item.id] = item
            d = len(item.sizes)
            if dims is None:
                dims = d
            elif d != dims:
                raise ValidationError(
                    f"item {item.id} has {d} dimension(s); "
                    f"list is {dims}-dimensional (all items must agree)"
                )
        self._items: tuple[Item, ...] = tuple(ordered)
        self._by_id = by_id
        self._dims = 1 if dims is None else dims
        self._size_profile_cache: dict[int, StepFunction] = {}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Item:
        return self._items[index]

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemList):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def by_id(self, item_id: int) -> Item:
        """Look up an item by id.

        Raises:
            KeyError: if no item has the given id.
        """
        return self._by_id[item_id]

    @property
    def items(self) -> tuple[Item, ...]:
        """All items in arrival order."""
        return self._items

    @property
    def dims(self) -> int:
        """Common dimensionality of the items (1 for an empty list)."""
        return self._dims

    # -- aggregate statistics (paper §3.1) -------------------------------------

    def total_demand(self) -> float:
        """``d(R) = Σ_r s(r)·l(I(r))`` — Proposition 1's lower bound.

        For vector instances, the maximum per-dimension demand: each
        dimension is independently a valid lower bound on usage time, so the
        largest one is the tightest.
        """
        if self._dims == 1:
            return float(sum(r.demand for r in self._items))
        return max(self.demand_by_dim())

    def demand_by_dim(self) -> tuple[float, ...]:
        """Per-dimension total time-space demand ``Σ_r s_d(r)·l(I(r))``."""
        totals = [0.0] * self._dims
        for r in self._items:
            dur = r.duration
            for d, s in enumerate(r.sizes):
                totals[d] += s * dur
        return tuple(float(x) for x in totals)

    def span(self) -> float:
        """``span(R)`` — Proposition 2's lower bound."""
        return _span(r.interval for r in self._items)

    def span_intervals(self) -> list[Interval]:
        """The maximal disjoint intervals making up the span."""
        return merge_intervals(r.interval for r in self._items)

    def min_duration(self) -> float:
        """Minimum item duration ``Δ``.

        Raises:
            ValidationError: on an empty list.
        """
        if not self._items:
            raise ValidationError("min_duration() of empty item list")
        return min(r.duration for r in self._items)

    def max_duration(self) -> float:
        """Maximum item duration ``μΔ``."""
        if not self._items:
            raise ValidationError("max_duration() of empty item list")
        return max(r.duration for r in self._items)

    def mu(self) -> float:
        """Max/min duration ratio ``μ ≥ 1``."""
        return self.max_duration() / self.min_duration()

    def size_profile(self, dim: int = 0) -> StepFunction:
        """The total-active-size profile ``S(t)`` in dimension ``dim``.

        Cached per dimension; do not mutate the returned function.

        Raises:
            ValidationError: if ``dim`` is outside ``[0, dims)``.
        """
        if not (0 <= dim < self._dims):
            raise ValidationError(
                f"size_profile dimension {dim} out of range for "
                f"{self._dims}-dimensional items"
            )
        cached = self._size_profile_cache.get(dim)
        if cached is None:
            cached = StepFunction()
            for r in self._items:
                cached.add(r.interval, r.sizes[dim])
            self._size_profile_cache[dim] = cached
        return cached

    def max_concurrent_size(self, dim: int = 0) -> float:
        """``max_t S(t)`` — peak aggregate demand in dimension ``dim``."""
        return self.size_profile(dim).max_value()

    def sizes_matrix(self) -> np.ndarray:
        """All demand vectors as a contiguous ``(len, dims)`` float array."""
        if not self._items:
            return np.zeros((0, self._dims), dtype=np.float64)
        return np.array([r.sizes for r in self._items], dtype=np.float64)

    def active_at(self, t: float) -> list[Item]:
        """All items active at time ``t``."""
        return [r for r in self._items if r.active_at(t)]

    def event_times(self) -> list[float]:
        """Sorted distinct arrival/departure times."""
        times = {r.arrival for r in self._items} | {r.departure for r in self._items}
        return sorted(times)

    # -- restructuring ----------------------------------------------------------

    def filter(self, predicate: Callable[[Item], bool]) -> "ItemList":
        """A new list with the items satisfying ``predicate``."""
        return ItemList(r for r in self._items if predicate(r))

    def partition(self, key: Callable[[Item], int]) -> dict[int, "ItemList"]:
        """Group items by an integer key (used by the classification packers)."""
        buckets: dict[int, list[Item]] = {}
        for r in self._items:
            buckets.setdefault(key(r), []).append(r)
        return {k: ItemList(v) for k, v in sorted(buckets.items())}

    def split_by_span_components(self) -> list["ItemList"]:
        """Split into sublists with pairwise-disjoint spans (paper §5.2 WLOG).

        Items whose active intervals fall in the same maximal span component
        end up in the same sublist; the analysis of the classification
        strategies applies to each sublist independently.
        """
        components = self.span_intervals()
        out: list[list[Item]] = [[] for _ in components]
        lefts = [c.left for c in components]
        for r in self._items:
            # Each item interval is fully inside exactly one component.
            idx = int(np.searchsorted(lefts, r.arrival, side="right")) - 1
            out[idx].append(r)
        return [ItemList(group) for group in out if group]

    def shift(self, delta: float) -> "ItemList":
        """All items translated by ``delta``."""
        return ItemList(r.shift(delta) for r in self._items)

    def replace(self, item: Item) -> "ItemList":
        """A new list with the same-id item swapped for ``item``.

        The single-item mutation primitive of the worst-case search and the
        incremental adversary oracle.

        Raises:
            KeyError: if no item with ``item.id`` exists.
        """
        if item.id not in self._by_id:
            raise KeyError(item.id)
        return ItemList(
            item if r.id == item.id else r for r in self._items
        )

    def changed_ids(self, other: "ItemList") -> list[int] | None:
        """Ids whose item differs between ``self`` and ``other``.

        Returns ``None`` when the two lists do not cover the same id set
        (an item was added or removed, not mutated) — the caller cannot treat
        the difference as a set of in-place mutations.  Tags are ignored,
        matching :class:`Item` equality.
        """
        if len(self._items) != len(other._items):
            return None
        if self._by_id.keys() != other._by_id.keys():
            return None
        return [
            item_id
            for item_id, item in self._by_id.items()
            if item != other._by_id[item_id]
        ]

    def renumbered(self, start: int = 0) -> "ItemList":
        """Items re-identified ``start, start+1, ...`` in arrival order."""
        return ItemList(
            Item(start + i, r.sizes, r.interval, dict(r.tags))
            for i, r in enumerate(self._items)
        )

    @classmethod
    def concat(cls, lists: Sequence["ItemList"]) -> "ItemList":
        """Concatenate item lists (ids must remain globally unique)."""
        items: list[Item] = []
        for sub in lists:
            items.extend(sub.items)
        return cls(items)

    # -- serialisation -----------------------------------------------------------

    def to_records(self) -> list[dict[str, object]]:
        """Plain-dict records (JSON-ready) for each item.

        Scalar items keep the legacy ``size`` field; vector items emit a
        ``sizes`` list instead (the trace loaders accept both).
        """
        if self._dims == 1:
            return [
                {
                    "id": r.id,
                    "size": r.sizes[0],
                    "arrival": r.arrival,
                    "departure": r.departure,
                    "tags": dict(r.tags),
                }
                for r in self._items
            ]
        return [
            {
                "id": r.id,
                "sizes": list(r.sizes),
                "arrival": r.arrival,
                "departure": r.departure,
                "tags": dict(r.tags),
            }
            for r in self._items
        ]

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, object]]) -> "ItemList":
        """Inverse of :meth:`to_records` (accepts ``size`` or ``sizes``)."""
        items = []
        for rec in records:
            if "sizes" in rec:
                sizes: float | tuple[float, ...] = tuple(
                    float(s) for s in rec["sizes"]  # type: ignore[union-attr]
                )
            else:
                sizes = float(rec["size"])  # type: ignore[arg-type]
            items.append(
                Item(
                    int(rec["id"]),  # type: ignore[arg-type]
                    sizes,
                    Interval(float(rec["arrival"]), float(rec["departure"])),  # type: ignore[arg-type]
                    dict(rec.get("tags", {})),  # type: ignore[arg-type]
                )
            )
        return cls(items)

    def to_json(self) -> str:
        """JSON text for the whole list."""
        return json.dumps(self.to_records())

    @classmethod
    def from_json(cls, text: str) -> "ItemList":
        """Inverse of :meth:`to_json`."""
        return cls.from_records(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ItemList(n={len(self._items)})"
