"""Items (jobs) and item lists for MinUsageTime Dynamic Bin Packing.

An :class:`Item` is the paper's ``r``: a size ``s(r) ∈ (0, 1]`` and a
half-open active interval ``I(r)``.  An :class:`ItemList` is the paper's
``R`` with the derived quantities the analysis uses everywhere:

* ``d(R)`` — total time-space demand ``Σ s(r)·l(I(r))`` (Proposition 1),
* ``span(R)`` — measure of times with at least one active item (Prop. 2),
* ``mu`` — max/min item-duration ratio ``μ``,
* the total-active-size profile ``S(t)`` (Proposition 3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .exceptions import ValidationError
from .intervals import Interval, merge_intervals, span as _span
from .stepfun import StepFunction

__all__ = ["Item", "ItemList"]


@dataclass(frozen=True, slots=True)
class Item:
    """A job to pack: identifier, resource size and active interval.

    Attributes:
        id: Unique identifier within an :class:`ItemList`.
        size: Resource demand, must lie in ``(0, capacity]`` where the bin
            capacity is 1 throughout the library (paper §3.2 WLOG).
        interval: Half-open active interval ``[arrival, departure)``.
        tags: Optional free-form metadata (e.g. the job template that
            generated the item); ignored by all algorithms.
    """

    id: int
    size: float
    interval: Interval
    tags: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.size <= 1.0):
            raise ValidationError(f"item {self.id}: size must be in (0, 1], got {self.size}")

    # Convenience accessors mirroring the paper's notation -------------------

    @property
    def arrival(self) -> float:
        """``I(r)^-``."""
        return self.interval.left

    @property
    def departure(self) -> float:
        """``I(r)^+``."""
        return self.interval.right

    @property
    def duration(self) -> float:
        """``l(I(r))``."""
        return self.interval.length

    @property
    def demand(self) -> float:
        """Time-space demand ``s(r) · l(I(r))``."""
        return self.size * self.duration

    def active_at(self, t: float) -> bool:
        """True iff the item is active at time ``t`` (half-open semantics)."""
        return t in self.interval

    def shift(self, delta: float) -> "Item":
        """A copy of this item translated in time by ``delta``."""
        return Item(self.id, self.size, self.interval.shift(delta), dict(self.tags))

    def with_departure(self, departure: float) -> "Item":
        """A copy with a different departure time (same id/size/arrival)."""
        return Item(self.id, self.size, Interval(self.arrival, departure), dict(self.tags))


class ItemList:
    """An immutable, validated list of items with cached aggregate statistics.

    Items are stored in arrival order (ties broken by id) — the order in which
    an online algorithm sees them.  The constructor checks id uniqueness.
    """

    __slots__ = ("_items", "_by_id", "_size_profile_cache")

    def __init__(self, items: Iterable[Item]):
        ordered = sorted(items, key=lambda r: (r.arrival, r.id))
        by_id: dict[int, Item] = {}
        for item in ordered:
            if item.id in by_id:
                raise ValidationError(f"duplicate item id {item.id}")
            by_id[item.id] = item
        self._items: tuple[Item, ...] = tuple(ordered)
        self._by_id = by_id
        self._size_profile_cache: StepFunction | None = None

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Item:
        return self._items[index]

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemList):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def by_id(self, item_id: int) -> Item:
        """Look up an item by id.

        Raises:
            KeyError: if no item has the given id.
        """
        return self._by_id[item_id]

    @property
    def items(self) -> tuple[Item, ...]:
        """All items in arrival order."""
        return self._items

    # -- aggregate statistics (paper §3.1) -------------------------------------

    def total_demand(self) -> float:
        """``d(R) = Σ_r s(r)·l(I(r))`` — Proposition 1's lower bound."""
        return float(sum(r.demand for r in self._items))

    def span(self) -> float:
        """``span(R)`` — Proposition 2's lower bound."""
        return _span(r.interval for r in self._items)

    def span_intervals(self) -> list[Interval]:
        """The maximal disjoint intervals making up the span."""
        return merge_intervals(r.interval for r in self._items)

    def min_duration(self) -> float:
        """Minimum item duration ``Δ``.

        Raises:
            ValidationError: on an empty list.
        """
        if not self._items:
            raise ValidationError("min_duration() of empty item list")
        return min(r.duration for r in self._items)

    def max_duration(self) -> float:
        """Maximum item duration ``μΔ``."""
        if not self._items:
            raise ValidationError("max_duration() of empty item list")
        return max(r.duration for r in self._items)

    def mu(self) -> float:
        """Max/min duration ratio ``μ ≥ 1``."""
        return self.max_duration() / self.min_duration()

    def size_profile(self) -> StepFunction:
        """The total-active-size profile ``S(t)`` (cached; do not mutate)."""
        if self._size_profile_cache is None:
            profile = StepFunction()
            for r in self._items:
                profile.add(r.interval, r.size)
            self._size_profile_cache = profile
        return self._size_profile_cache

    def max_concurrent_size(self) -> float:
        """``max_t S(t)`` — peak aggregate demand."""
        return self.size_profile().max_value()

    def active_at(self, t: float) -> list[Item]:
        """All items active at time ``t``."""
        return [r for r in self._items if r.active_at(t)]

    def event_times(self) -> list[float]:
        """Sorted distinct arrival/departure times."""
        times = {r.arrival for r in self._items} | {r.departure for r in self._items}
        return sorted(times)

    # -- restructuring ----------------------------------------------------------

    def filter(self, predicate: Callable[[Item], bool]) -> "ItemList":
        """A new list with the items satisfying ``predicate``."""
        return ItemList(r for r in self._items if predicate(r))

    def partition(self, key: Callable[[Item], int]) -> dict[int, "ItemList"]:
        """Group items by an integer key (used by the classification packers)."""
        buckets: dict[int, list[Item]] = {}
        for r in self._items:
            buckets.setdefault(key(r), []).append(r)
        return {k: ItemList(v) for k, v in sorted(buckets.items())}

    def split_by_span_components(self) -> list["ItemList"]:
        """Split into sublists with pairwise-disjoint spans (paper §5.2 WLOG).

        Items whose active intervals fall in the same maximal span component
        end up in the same sublist; the analysis of the classification
        strategies applies to each sublist independently.
        """
        components = self.span_intervals()
        out: list[list[Item]] = [[] for _ in components]
        lefts = [c.left for c in components]
        for r in self._items:
            # Each item interval is fully inside exactly one component.
            idx = int(np.searchsorted(lefts, r.arrival, side="right")) - 1
            out[idx].append(r)
        return [ItemList(group) for group in out if group]

    def shift(self, delta: float) -> "ItemList":
        """All items translated by ``delta``."""
        return ItemList(r.shift(delta) for r in self._items)

    def replace(self, item: Item) -> "ItemList":
        """A new list with the same-id item swapped for ``item``.

        The single-item mutation primitive of the worst-case search and the
        incremental adversary oracle.

        Raises:
            KeyError: if no item with ``item.id`` exists.
        """
        if item.id not in self._by_id:
            raise KeyError(item.id)
        return ItemList(
            item if r.id == item.id else r for r in self._items
        )

    def changed_ids(self, other: "ItemList") -> list[int] | None:
        """Ids whose item differs between ``self`` and ``other``.

        Returns ``None`` when the two lists do not cover the same id set
        (an item was added or removed, not mutated) — the caller cannot treat
        the difference as a set of in-place mutations.  Tags are ignored,
        matching :class:`Item` equality.
        """
        if len(self._items) != len(other._items):
            return None
        if self._by_id.keys() != other._by_id.keys():
            return None
        return [
            item_id
            for item_id, item in self._by_id.items()
            if item != other._by_id[item_id]
        ]

    def renumbered(self, start: int = 0) -> "ItemList":
        """Items re-identified ``start, start+1, ...`` in arrival order."""
        return ItemList(
            Item(start + i, r.size, r.interval, dict(r.tags))
            for i, r in enumerate(self._items)
        )

    @classmethod
    def concat(cls, lists: Sequence["ItemList"]) -> "ItemList":
        """Concatenate item lists (ids must remain globally unique)."""
        items: list[Item] = []
        for sub in lists:
            items.extend(sub.items)
        return cls(items)

    # -- serialisation -----------------------------------------------------------

    def to_records(self) -> list[dict[str, object]]:
        """Plain-dict records (JSON-ready) for each item."""
        return [
            {
                "id": r.id,
                "size": r.size,
                "arrival": r.arrival,
                "departure": r.departure,
                "tags": dict(r.tags),
            }
            for r in self._items
        ]

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, object]]) -> "ItemList":
        """Inverse of :meth:`to_records`."""
        items = []
        for rec in records:
            items.append(
                Item(
                    int(rec["id"]),  # type: ignore[arg-type]
                    float(rec["size"]),  # type: ignore[arg-type]
                    Interval(float(rec["arrival"]), float(rec["departure"])),  # type: ignore[arg-type]
                    dict(rec.get("tags", {})),  # type: ignore[arg-type]
                )
            )
        return cls(items)

    def to_json(self) -> str:
        """JSON text for the whole list."""
        return json.dumps(self.to_records())

    @classmethod
    def from_json(cls, text: str) -> "ItemList":
        """Inverse of :meth:`to_json`."""
        return cls.from_records(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ItemList(n={len(self._items)})"
