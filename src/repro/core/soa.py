"""Struct-of-arrays (SoA) bin-state core for the fit-check hot loop.

The object-graph representation (:class:`~repro.core.Bin` with one
:class:`~repro.core.StepFunction` per dimension) is exact and supports every
query the analysis needs, but the *online placement* hot loop only ever asks
one question: *which of these candidate bins is open at the current arrival
and fits this item in every dimension?*  For arrival-order packing that
question needs just two facts per bin — its **current level vector** and its
**close time** — because committed levels can only decrease in the item's
future (the same invariant that makes
:meth:`~repro.core.Bin.fits_at_arrival` equivalent to the clairvoyant
:meth:`~repro.core.Bin.fits` for online packers).

:class:`SoAFitChecker` keeps those two facts in contiguous numpy arrays —
``levels[dim, bin]`` and ``closes[bin]`` — so a placement checks *all*
candidate bins with one vectorised mask instead of per-bin step-function
bisections.  Departures are applied lazily from a min-heap when the clock
advances, with stale entries (from amended departures) skipped exactly like
the packers' own retire heap.

The checker is the engine behind the vector packers' ``soa`` feature flag
(:mod:`repro.algorithms.vector`); the flag is parity-gated — both engines
must produce bit-identical placements — and benchmarked by
``benchmarks/bench_vector_fitcheck.py``.
"""

from __future__ import annotations

import heapq

import numpy as np

from .exceptions import ValidationError
from .stepfun import DEFAULT_TOL

__all__ = ["SoAFitChecker", "IntVector"]

_NEG_INF = float("-inf")


class IntVector:
    """A growable, append-only vector of non-negative ints backed by numpy.

    Used for per-category candidate bin lists: appends are amortised O(1)
    and :meth:`view` exposes the live prefix as a zero-copy ``ndarray`` for
    vectorised masking.  Entries stay in append order (for first-fit, the
    bin opening order).
    """

    __slots__ = ("_data", "_n")

    def __init__(self, initial_capacity: int = 16) -> None:
        self._data = np.empty(max(1, initial_capacity), dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, value: int) -> None:
        """Append one value, growing the backing array geometrically."""
        if self._n == self._data.size:
            grown = np.empty(self._data.size * 2, dtype=np.int64)
            grown[: self._n] = self._data
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def view(self) -> np.ndarray:
        """Zero-copy view of the live entries (do not mutate)."""
        return self._data[: self._n]

    def replace(self, values: np.ndarray) -> None:
        """Replace the contents with ``values`` (used for compaction)."""
        n = int(values.size)
        if n > self._data.size:
            self._data = np.empty(max(n, 1), dtype=np.int64)
        self._data[:n] = values
        self._n = n


class SoAFitChecker:
    """Contiguous per-bin level vectors and close times for batch fit checks.

    Mirrors the committed state of an online packer's bin pool in
    struct-of-arrays layout:

    * ``levels[dim, bin]`` — current committed level per dimension, updated
      by :meth:`place` (add), :meth:`advance` (lazy departure subtraction)
      and :meth:`amend_last` (delta correction);
    * ``closes[bin]`` — bin close time, used as the open-at-``t`` predicate
      (``closes[b] > t``) which is exact at the arrival frontier.  Callers
      that amend departures downward must resync via :meth:`set_close`
      (the vector packers do this from the bins' exact close times).

    The checker is *only* valid for arrival-order (online) placement, where
    the current level is the future maximum; offline packers must keep using
    the clairvoyant step-function check.

    Args:
        dims: Number of resource dimensions (>= 1).
        capacity: Bin capacity shared by every dimension.
        tol: Absolute capacity-comparison tolerance (matches
            :class:`~repro.core.Bin`).
    """

    __slots__ = (
        "dims",
        "capacity",
        "tol",
        "_levels",
        "_closes",
        "_nbins",
        "_heap",
        "_rec_bin",
        "_rec_sizes",
        "_rec_departure",
        "_clock",
    )

    def __init__(self, dims: int, capacity: float = 1.0, tol: float = DEFAULT_TOL) -> None:
        if dims < 1:
            raise ValidationError(f"SoAFitChecker dims must be >= 1, got {dims}")
        self.dims = dims
        self.capacity = capacity
        self.tol = tol
        self._levels = np.zeros((dims, 64), dtype=np.float64)
        self._closes = np.full(64, _NEG_INF, dtype=np.float64)
        self._nbins = 0
        # Lazy departure queue: (departure, serial) entries; a serial's
        # record holds its authoritative departure, so stale entries (from
        # amends) are detected and skipped on pop.
        self._heap: list[tuple[float, int]] = []
        self._rec_bin: list[int] = []
        self._rec_sizes: list[np.ndarray] = []
        self._rec_departure: list[float] = []
        self._clock = _NEG_INF

    # -- pool ------------------------------------------------------------------

    @property
    def nbins(self) -> int:
        """Number of bins opened so far."""
        return self._nbins

    @property
    def levels(self) -> np.ndarray:
        """Live ``(dims, nbins)`` view of current levels (do not mutate)."""
        return self._levels[:, : self._nbins]

    @property
    def closes(self) -> np.ndarray:
        """Live ``(nbins,)`` view of close times (do not mutate)."""
        return self._closes[: self._nbins]

    def open_bin(self) -> int:
        """Allocate the next bin slot and return its index."""
        if self._nbins == self._closes.size:
            cap = self._closes.size * 2
            levels = np.zeros((self.dims, cap), dtype=np.float64)
            levels[:, : self._nbins] = self._levels[:, : self._nbins]
            self._levels = levels
            closes = np.full(cap, _NEG_INF, dtype=np.float64)
            closes[: self._nbins] = self._closes[: self._nbins]
            self._closes = closes
        index = self._nbins
        self._nbins += 1
        return index

    # -- time ------------------------------------------------------------------

    def advance(self, t: float) -> None:
        """Apply all departures at or before ``t`` to the level arrays.

        Half-open interval semantics: an item departing exactly at ``t``
        frees its capacity *at* ``t``, matching the step-function level the
        object path reads.  Stale heap entries (a serial whose departure was
        amended after the entry was pushed) are skipped.
        """
        heap = self._heap
        while heap and heap[0][0] <= t:
            departure, serial = heapq.heappop(heap)
            if departure != self._rec_departure[serial]:
                continue  # stale: this placement's departure was amended
            self._rec_departure[serial] = _NEG_INF  # consumed
            self._levels[:, self._rec_bin[serial]] -= self._rec_sizes[serial]
        self._clock = t

    # -- placement -------------------------------------------------------------

    def place(self, index: int, sizes: np.ndarray, departure: float) -> int:
        """Record a committed placement into bin ``index``; returns a serial.

        ``sizes`` must be a ``(dims,)`` float array; the caller is
        responsible for having checked the fit (see :meth:`first_open_fit`).
        """
        self._levels[:, index] += sizes
        if departure > self._closes[index]:
            self._closes[index] = departure
        serial = len(self._rec_bin)
        self._rec_bin.append(index)
        self._rec_sizes.append(sizes)
        self._rec_departure.append(departure)
        heapq.heappush(self._heap, (departure, serial))
        return serial

    def amend_last(self, sizes: np.ndarray, departure: float) -> None:
        """Amend the most recent :meth:`place` to new sizes/departure.

        Supports the engine's noisy-clairvoyance flow: the predicted item is
        committed, then amended to its actual interval before the clock moves
        — so the placement cannot have departed yet.  Level deltas are
        applied immediately; the close time may need :meth:`set_close` from
        the caller when the amendment *shrinks* a departure (max-tracking
        alone cannot recover it).
        """
        serial = len(self._rec_bin) - 1
        if serial < 0 or self._rec_departure[serial] == _NEG_INF:
            raise ValidationError("amend_last: no live placement to amend")
        index = self._rec_bin[serial]
        self._levels[:, index] += sizes - self._rec_sizes[serial]
        self._rec_sizes[serial] = sizes
        self._rec_departure[serial] = departure
        heapq.heappush(self._heap, (departure, serial))
        if departure > self._closes[index]:
            self._closes[index] = departure

    def set_close(self, index: int, close: float) -> None:
        """Overwrite one bin's close time (exact resync after an amend)."""
        self._closes[index] = close

    # -- the hot query ----------------------------------------------------------

    def fit_mask(self, sizes: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Boolean mask over ``candidates``: fits in every dimension now."""
        lv = self._levels[:, candidates]
        return np.all(lv + sizes[:, None] <= self.capacity + self.tol, axis=0)

    def first_open_fit(self, sizes: np.ndarray, t: float, candidates: np.ndarray) -> int:
        """First candidate bin open at ``t`` that fits ``sizes``; -1 if none.

        ``candidates`` must be in first-fit preference order (bin opening
        order for the first-fit family).  The caller must have called
        :meth:`advance` to ``t`` first.
        """
        if candidates.size == 0:
            return -1
        ok = self._closes[candidates] > t
        lv = self._levels[:, candidates]
        np.logical_and(
            ok, np.all(lv + sizes[:, None] <= self.capacity + self.tol, axis=0), out=ok
        )
        hit = int(ok.argmax())
        if not ok[hit]:
            return -1
        return int(candidates[hit])

    def compact(self, candidates: IntVector, t: float) -> None:
        """Drop bins already closed at ``t`` from a candidate list.

        Keeps candidate lists from accumulating every bin ever opened; the
        open-at-``t`` predicate (``closes > t``) can only flip one way at the
        arrival frontier, so dropping closed bins never changes a future
        first-fit decision.
        """
        view = candidates.view()
        candidates.replace(view[self._closes[view] > t])
