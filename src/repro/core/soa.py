"""Struct-of-arrays (SoA) bin-state core for the fit-check hot loop.

The object-graph representation (:class:`~repro.core.Bin` with one
:class:`~repro.core.StepFunction` per dimension) is exact and supports every
query the analysis needs, but the *online placement* hot loop only ever asks
one question: *which of these candidate bins is open at the current arrival
and fits this item in every dimension?*  For arrival-order packing that
question needs just two facts per bin — its **current level vector** and its
**close time** — because committed levels can only decrease in the item's
future (the same invariant that makes
:meth:`~repro.core.Bin.fits_at_arrival` equivalent to the clairvoyant
:meth:`~repro.core.Bin.fits` for online packers).

:class:`SoAFitChecker` keeps those two facts in contiguous numpy arrays —
``levels[dim, bin]`` and ``closes[bin]`` — so a placement checks *all*
candidate bins with one vectorised mask instead of per-bin step-function
bisections.  Departures are applied lazily from a min-heap when the clock
advances, with stale entries (from amended departures) skipped exactly like
the packers' own retire heap.

The checker is the engine behind the vector packers' ``soa`` feature flag
(:mod:`repro.algorithms.vector`); the flag is parity-gated — both engines
must produce bit-identical placements — and benchmarked by
``benchmarks/bench_vector_fitcheck.py``.
"""

from __future__ import annotations

import heapq

import numpy as np

from .exceptions import ValidationError
from .stepfun import DEFAULT_TOL

__all__ = ["SoAFitChecker", "IntVector", "BatchCursor"]

_NEG_INF = float("-inf")


class IntVector:
    """A growable, append-only vector of non-negative ints backed by numpy.

    Used for per-category candidate bin lists: appends are amortised O(1)
    and :meth:`view` exposes the live prefix as a zero-copy ``ndarray`` for
    vectorised masking.  Entries stay in append order (for first-fit, the
    bin opening order).
    """

    __slots__ = ("_data", "_n")

    def __init__(self, initial_capacity: int = 16) -> None:
        self._data = np.empty(max(1, initial_capacity), dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, value: int) -> None:
        """Append one value, growing the backing array geometrically."""
        if self._n == self._data.size:
            grown = np.empty(self._data.size * 2, dtype=np.int64)
            grown[: self._n] = self._data
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def view(self) -> np.ndarray:
        """Zero-copy view of the live entries (do not mutate)."""
        return self._data[: self._n]

    def replace(self, values: np.ndarray) -> None:
        """Replace the contents with ``values`` (used for compaction)."""
        n = int(values.size)
        if n > self._data.size:
            self._data = np.empty(max(n, 1), dtype=np.int64)
        self._data[:n] = values
        self._n = n


class SoAFitChecker:
    """Contiguous per-bin level vectors and close times for batch fit checks.

    Mirrors the committed state of an online packer's bin pool in
    struct-of-arrays layout:

    * ``levels[dim, bin]`` — current committed level per dimension, updated
      by :meth:`place` (add), :meth:`advance` (lazy departure subtraction)
      and :meth:`amend_last` (delta correction);
    * ``closes[bin]`` — bin close time, used as the open-at-``t`` predicate
      (``closes[b] > t``) which is exact at the arrival frontier.  Callers
      that amend departures downward must resync via :meth:`set_close`
      (the vector packers do this from the bins' exact close times).

    The checker is *only* valid for arrival-order (online) placement, where
    the current level is the future maximum; offline packers must keep using
    the clairvoyant step-function check.

    Args:
        dims: Number of resource dimensions (>= 1).
        capacity: Bin capacity shared by every dimension.
        tol: Absolute capacity-comparison tolerance (matches
            :class:`~repro.core.Bin`).
    """

    __slots__ = (
        "dims",
        "capacity",
        "tol",
        "_levels",
        "_closes",
        "_nbins",
        "_heap",
        "_rec_bin",
        "_rec_sizes",
        "_rec_departure",
        "_clock",
        "_cursor",
    )

    def __init__(self, dims: int, capacity: float = 1.0, tol: float = DEFAULT_TOL) -> None:
        if dims < 1:
            raise ValidationError(f"SoAFitChecker dims must be >= 1, got {dims}")
        self.dims = dims
        self.capacity = capacity
        self.tol = tol
        self._levels = np.zeros((dims, 64), dtype=np.float64)
        self._closes = np.full(64, _NEG_INF, dtype=np.float64)
        self._nbins = 0
        # Lazy departure queue: (departure, serial) entries; a serial's
        # record holds its authoritative departure, so stale entries (from
        # amends) are detected and skipped on pop.
        self._heap: list[tuple[float, int]] = []
        self._rec_bin: list[int] = []
        self._rec_sizes: list[np.ndarray] = []
        self._rec_departure: list[float] = []
        self._clock = _NEG_INF
        # Flushed BatchCursor whose mirror still equals the arrays; any
        # scalar mutation below drops it so the next batch re-snapshots.
        self._cursor: "BatchCursor | None" = None

    # -- pool ------------------------------------------------------------------

    @property
    def nbins(self) -> int:
        """Number of bins opened so far."""
        return self._nbins

    @property
    def levels(self) -> np.ndarray:
        """Live ``(dims, nbins)`` view of current levels (do not mutate)."""
        return self._levels[:, : self._nbins]

    @property
    def closes(self) -> np.ndarray:
        """Live ``(nbins,)`` view of close times (do not mutate)."""
        return self._closes[: self._nbins]

    def open_bin(self) -> int:
        """Allocate the next bin slot and return its index."""
        if self._nbins == self._closes.size:
            cap = self._closes.size * 2
            levels = np.zeros((self.dims, cap), dtype=np.float64)
            levels[:, : self._nbins] = self._levels[:, : self._nbins]
            self._levels = levels
            closes = np.full(cap, _NEG_INF, dtype=np.float64)
            closes[: self._nbins] = self._closes[: self._nbins]
            self._closes = closes
        index = self._nbins
        self._nbins += 1
        self._cursor = None
        return index

    # -- time ------------------------------------------------------------------

    def advance(self, t: float) -> None:
        """Apply all departures at or before ``t`` to the level arrays.

        Half-open interval semantics: an item departing exactly at ``t``
        frees its capacity *at* ``t``, matching the step-function level the
        object path reads.  Stale heap entries (a serial whose departure was
        amended after the entry was pushed) are skipped.
        """
        heap = self._heap
        while heap and heap[0][0] <= t:
            departure, serial = heapq.heappop(heap)
            if departure != self._rec_departure[serial]:
                continue  # stale: this placement's departure was amended
            self._rec_departure[serial] = _NEG_INF  # consumed
            self._levels[:, self._rec_bin[serial]] -= self._rec_sizes[serial]
        self._clock = t
        self._cursor = None

    # -- placement -------------------------------------------------------------

    def place(self, index: int, sizes: np.ndarray, departure: float) -> int:
        """Record a committed placement into bin ``index``; returns a serial.

        ``sizes`` must be a ``(dims,)`` float array; the caller is
        responsible for having checked the fit (see :meth:`first_open_fit`).
        """
        self._levels[:, index] += sizes
        if departure > self._closes[index]:
            self._closes[index] = departure
        serial = len(self._rec_bin)
        self._rec_bin.append(index)
        self._rec_sizes.append(sizes)
        self._rec_departure.append(departure)
        heapq.heappush(self._heap, (departure, serial))
        self._cursor = None
        return serial

    def amend_last(self, sizes: np.ndarray, departure: float) -> None:
        """Amend the most recent :meth:`place` to new sizes/departure.

        Supports the engine's noisy-clairvoyance flow: the predicted item is
        committed, then amended to its actual interval before the clock moves
        — so the placement cannot have departed yet.  Level deltas are
        applied immediately; the close time may need :meth:`set_close` from
        the caller when the amendment *shrinks* a departure (max-tracking
        alone cannot recover it).
        """
        serial = len(self._rec_bin) - 1
        if serial < 0 or self._rec_departure[serial] == _NEG_INF:
            raise ValidationError("amend_last: no live placement to amend")
        index = self._rec_bin[serial]
        self._levels[:, index] += sizes - self._rec_sizes[serial]
        self._rec_sizes[serial] = sizes
        self._rec_departure[serial] = departure
        heapq.heappush(self._heap, (departure, serial))
        if departure > self._closes[index]:
            self._closes[index] = departure
        self._cursor = None

    def set_close(self, index: int, close: float) -> None:
        """Overwrite one bin's close time (exact resync after an amend)."""
        self._closes[index] = close
        self._cursor = None

    # -- the hot query ----------------------------------------------------------

    def fit_mask(self, sizes: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Boolean mask over ``candidates``: fits in every dimension now."""
        lv = self._levels[:, candidates]
        return np.all(lv + sizes[:, None] <= self.capacity + self.tol, axis=0)

    def first_open_fit(self, sizes: np.ndarray, t: float, candidates: np.ndarray) -> int:
        """First candidate bin open at ``t`` that fits ``sizes``; -1 if none.

        ``candidates`` must be in first-fit preference order (bin opening
        order for the first-fit family).  The caller must have called
        :meth:`advance` to ``t`` first.
        """
        if candidates.size == 0:
            return -1
        ok = self._closes[candidates] > t
        lv = self._levels[:, candidates]
        np.logical_and(
            ok, np.all(lv + sizes[:, None] <= self.capacity + self.tol, axis=0), out=ok
        )
        hit = int(ok.argmax())
        if not ok[hit]:
            return -1
        return int(candidates[hit])

    def compact(self, candidates: IntVector, t: float) -> None:
        """Drop bins already closed at ``t`` from a candidate list.

        Keeps candidate lists from accumulating every bin ever opened; the
        open-at-``t`` predicate (``closes > t``) can only flip one way at the
        arrival frontier, so dropping closed bins never changes a future
        first-fit decision.
        """
        view = candidates.view()
        candidates.replace(view[self._closes[view] > t])

    def batch_cursor(self) -> "BatchCursor":
        """A :class:`BatchCursor` over this checker's current state.

        Reuses the last flushed cursor when no scalar mutation has happened
        since — its mirror already equals the arrays, so back-to-back batches
        skip the O(nbins) re-snapshot.
        """
        cursor = self._cursor
        if cursor is not None:
            return cursor
        return BatchCursor(self)


class BatchCursor:
    """Pure-Python mirror of a :class:`SoAFitChecker` for tight batch loops.

    Vectorised fit checks win when a query scans many candidate bins, but an
    arrival-order placement probes only the handful of currently-open bins in
    its category — at that scale the fixed per-call overhead of each numpy
    operation dominates the actual arithmetic.  The cursor snapshots the
    checker's level/close state into plain Python lists, lets the batch loop
    run entirely in scalar Python (CPython floats *are* IEEE float64, so
    every add/compare is bit-identical to the array path, and the
    short-circuiting first-fit scan returns the same index the vectorised
    ``argmax`` would), and :meth:`flush` writes the final state back to the
    arrays.

    The departure heap and placement records are shared with the checker
    (they are Python objects already), so placements recorded through the
    cursor retire correctly through either path afterwards.  Between
    construction and :meth:`flush` the owning checker's own mutating methods
    must not be called.

    The mirror state is deliberately public (``levels``, ``closes``,
    ``heap``, ``rec_bin``, ``rec_sizes``, ``rec_departure``, ``captol``,
    ``clock``): the innermost placement loop binds these as locals and
    applies the same operations the methods below document, because even one
    method call per item is measurable at millions of items.  The methods
    remain the reference semantics (and serve smaller call sites).
    """

    __slots__ = (
        "_ck",
        "levels",
        "closes",
        "heap",
        "rec_bin",
        "rec_sizes",
        "rec_departure",
        "captol",
        "dims",
        "clock",
    )

    def __init__(self, checker: SoAFitChecker) -> None:
        n = checker._nbins
        self._ck = checker
        self.levels = [checker._levels[d, :n].tolist() for d in range(checker.dims)]
        self.closes = checker._closes[:n].tolist()
        self.heap = checker._heap
        self.rec_bin = checker._rec_bin
        self.rec_sizes = checker._rec_sizes
        self.rec_departure = checker._rec_departure
        self.captol = checker.capacity + checker.tol
        self.dims = checker.dims
        self.clock = checker._clock

    def advance(self, t: float) -> None:
        """Apply all departures due by ``t`` (same schedule as the checker)."""
        heap = self.heap
        if heap and heap[0][0] <= t:
            pop = heapq.heappop
            rec_departure = self.rec_departure
            rec_bin = self.rec_bin
            rec_sizes = self.rec_sizes
            levels = self.levels
            dims = self.dims
            while heap and heap[0][0] <= t:
                departure, serial = pop(heap)
                if departure != rec_departure[serial]:
                    continue  # stale: this placement's departure was amended
                rec_departure[serial] = _NEG_INF  # consumed
                index = rec_bin[serial]
                sizes = rec_sizes[serial]
                for d in range(dims):
                    levels[d][index] -= sizes[d]
        self.clock = t

    def first_open_fit(self, sizes, t: float, candidates) -> int:
        """First candidate open at ``t`` that fits; -1 if none.

        ``sizes`` is a per-dimension sequence of floats and ``candidates`` a
        plain list in first-fit preference order.
        """
        closes = self.closes
        captol = self.captol
        if self.dims == 1:
            lv = self.levels[0]
            s0 = sizes[0]
            for b in candidates:
                if closes[b] > t and lv[b] + s0 <= captol:
                    return b
            return -1
        levels = self.levels
        dims = self.dims
        for b in candidates:
            if closes[b] > t:
                for d in range(dims):
                    if levels[d][b] + sizes[d] > captol:
                        break
                else:
                    return b
        return -1

    def open_bin(self) -> int:
        """Allocate the next bin slot and return its index."""
        for lv in self.levels:
            lv.append(0.0)
        self.closes.append(_NEG_INF)
        return len(self.closes) - 1

    def place(self, index: int, sizes, departure: float) -> int:
        """Record a committed placement into bin ``index``; returns a serial."""
        levels = self.levels
        for d in range(self.dims):
            levels[d][index] += sizes[d]
        closes = self.closes
        if departure > closes[index]:
            closes[index] = departure
        serial = len(self.rec_bin)
        self.rec_bin.append(index)
        self.rec_sizes.append(sizes)
        self.rec_departure.append(departure)
        heapq.heappush(self.heap, (departure, serial))
        return serial

    def compact(self, candidates: list, t: float) -> list:
        """Candidates still open at ``t`` (same predicate as the checker)."""
        closes = self.closes
        return [b for b in candidates if closes[b] > t]

    def flush(self) -> None:
        """Write the mirrored state back into the owning checker's arrays.

        Also re-installs this cursor as the checker's cached cursor: until a
        scalar mutation invalidates it, the next :meth:`~SoAFitChecker.
        batch_cursor` call returns it without re-snapshotting.
        """
        ck = self._ck
        n = len(self.closes)
        if n > ck._closes.size:
            cap = ck._closes.size
            while cap < n:
                cap *= 2
            ck._levels = np.zeros((ck.dims, cap), dtype=np.float64)
            ck._closes = np.full(cap, _NEG_INF, dtype=np.float64)
        if n:
            ck._levels[:, :n] = np.asarray(self.levels, dtype=np.float64)
            ck._closes[:n] = self.closes
        ck._nbins = n
        ck._clock = self.clock
        ck._cursor = self
