"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish the failure classes that matter for
packing workloads:

* :class:`ValidationError` — malformed inputs (bad sizes, inverted intervals,
  duplicate item ids, …).
* :class:`RegistryError` — a packer-registry lookup failed (unknown name,
  bad parameters, or a dimensionality the packer does not support); one
  uniform :class:`ValidationError` shape for every lookup-failure path.
* :class:`UnknownPackerError` — the requested packer name is not registered
  (a :class:`RegistryError` that also subclasses :class:`KeyError` for
  mapping-style callers).
* :class:`CapacityError` — an operation would overflow a bin's capacity.
* :class:`InfeasibleError` — no feasible packing exists under the requested
  constraints (e.g. an item larger than the bin capacity).
* :class:`SolverLimitError` — an exact solver exceeded its configured search
  budget.
* :class:`DeadlineExceeded` — a wall-clock :class:`~repro.resilience.Deadline`
  expired before the operation finished (a :class:`SolverLimitError`, so
  node-budget fallback paths degrade identically).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "RegistryError",
    "UnknownPackerError",
    "CapacityError",
    "InfeasibleError",
    "SolverLimitError",
    "DeadlineExceeded",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input object violates the library's invariants.

    Raised for inverted or empty intervals, non-positive sizes, items larger
    than the unit capacity, duplicate item identifiers, and packing results
    that fail feasibility checks.
    """


class RegistryError(ValidationError):
    """A packer-registry lookup failed.

    The single error shape for every :func:`~repro.algorithms.get_packer`
    failure path — unknown packer name, unknown or missing constructor
    parameters, and dimensionality mismatches — so callers can catch one
    class (or, via :class:`ValidationError`, one ``ValueError``) regardless
    of which check tripped.  Messages are uniformly prefixed with
    ``packer '<name>':``.
    """


class UnknownPackerError(RegistryError, KeyError):
    """The requested packer name is not in the registry.

    Subclasses :class:`KeyError` so mapping-style callers keep working, but
    renders its message like a plain exception instead of ``KeyError``'s
    quoted-repr form.
    """

    def __str__(self) -> str:
        return Exception.__str__(self)


class CapacityError(ReproError):
    """Placing an item would exceed a bin's capacity at some point in time."""

    def __init__(self, message: str, *, time: float | None = None) -> None:
        super().__init__(message)
        #: The earliest time at which the overflow occurs, if known.
        self.time = time


class InfeasibleError(ReproError):
    """The requested packing problem admits no feasible solution."""


class SolverLimitError(ReproError):
    """An exact solver hit its node/time budget before proving optimality."""

    def __init__(self, message: str, *, best_known: float | None = None) -> None:
        super().__init__(message)
        #: Best feasible objective value found before the budget ran out —
        #: an ``int`` bin count for the classical solver, a ``float`` usage
        #: time for :func:`~repro.algorithms.optimal_packing`, or ``None``
        #: when no feasible solution was found at all.
        self.best_known = best_known


class DeadlineExceeded(SolverLimitError):
    """A wall-clock deadline expired before the operation finished.

    Subclasses :class:`SolverLimitError` so callers that already degrade on
    a node-budget overflow (e.g. the adversary-denominator fallback to the
    Proposition 1–3 bounds) treat deadline expiry the same way; catch this
    class specifically to distinguish time from search-space exhaustion.
    """
