"""Structure-of-arrays arrival batches for the columnar engine hot path.

The streaming engine's scalar API (:meth:`~repro.engine.PackingSession.submit`)
pays per-item Python overhead — clock checks, fault checks, telemetry writes,
an open-bin query — for every arrival.  :class:`ArrivalBatch` is the columnar
input type that lets :meth:`~repro.engine.PackingSession.submit_many` and
:meth:`~repro.algorithms.OnlinePacker.place_many` amortise all of that across
a whole batch: ids, arrivals, departures and the ``(n, d)`` size matrix live
in contiguous numpy arrays, so batch validation is a handful of vectorised
reductions and the SoA fit-check core (:class:`~repro.core.SoAFitChecker`)
can consume size rows directly without ever materialising
:class:`~repro.core.Item` objects on the hot path.

Construction is validated once per batch (:meth:`ArrivalBatch.from_arrays`)
or inherited from already-validated items (:meth:`ArrivalBatch.from_items`),
which is what makes the trusted fast paths downstream sound.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .exceptions import ValidationError
from .items import Item, ItemList
from .intervals import Interval

__all__ = ["ArrivalBatch"]


def _trusted_item(
    item_id: int, sizes: tuple[float, ...], arrival: float, departure: float
) -> Item:
    """Build an :class:`Item` from already-validated fields, skipping checks.

    Every field must satisfy the :class:`Item` invariants (sizes in
    ``(0, 1]``, ``arrival < departure``, both finite) — callers are the
    validated columnar paths (:class:`ArrivalBatch`, the columnar trace
    loader), which check those invariants vectorised over the whole batch
    before constructing any object.
    """
    iv = object.__new__(Interval)
    object.__setattr__(iv, "left", arrival)
    object.__setattr__(iv, "right", departure)
    item = object.__new__(Item)
    object.__setattr__(item, "id", item_id)
    object.__setattr__(item, "sizes", sizes)
    object.__setattr__(item, "interval", iv)
    object.__setattr__(item, "tags", {})
    return item


class ArrivalBatch:
    """A validated, columnar batch of arriving items (structure of arrays).

    Attributes:
        ids: ``(n,)`` int64 item identifiers.
        arrivals: ``(n,)`` float64 arrival times.
        departures: ``(n,)`` float64 departure times.
        sizes: ``(n, d)`` float64 demand matrix (C-contiguous); row ``i`` is
            item ``i``'s demand vector.

    Rows are kept in the order given; :meth:`~repro.engine.PackingSession.submit_many`
    requires (and checks) non-decreasing arrivals for its fast path.
    """

    __slots__ = ("ids", "arrivals", "departures", "sizes")

    def __init__(
        self,
        ids: np.ndarray,
        arrivals: np.ndarray,
        departures: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Wrap pre-normalised arrays; use the classmethod constructors."""
        self.ids = ids
        self.arrivals = arrivals
        self.departures = departures
        self.sizes = sizes

    @classmethod
    def from_arrays(
        cls,
        ids: "np.ndarray | Iterable[int]",
        arrivals: "np.ndarray | Iterable[float]",
        departures: "np.ndarray | Iterable[float]",
        sizes: "np.ndarray | Iterable[float] | Iterable[Iterable[float]]",
    ) -> "ArrivalBatch":
        """Build a batch from array-likes, validating the item invariants.

        ``sizes`` may be ``(n,)`` (scalar items) or ``(n, d)``.  Validation
        mirrors :class:`~repro.core.Item`: every size coordinate in
        ``(0, 1]``, finite times with ``arrival < departure`` per row.

        Raises:
            ValidationError: on shape mismatches or any out-of-range row
                (the message names the first offending row's id).
        """
        ids_a = np.ascontiguousarray(ids, dtype=np.int64)
        arr = np.ascontiguousarray(arrivals, dtype=np.float64)
        dep = np.ascontiguousarray(departures, dtype=np.float64)
        sz = np.ascontiguousarray(sizes, dtype=np.float64)
        if sz.ndim == 1:
            sz = sz.reshape(-1, 1)
        n = ids_a.shape[0]
        if sz.ndim != 2 or arr.shape != (n,) or dep.shape != (n,) or sz.shape[0] != n:
            raise ValidationError(
                "ArrivalBatch arrays must share one length: got "
                f"ids {ids_a.shape}, arrivals {arr.shape}, departures "
                f"{dep.shape}, sizes {sz.shape}"
            )
        if n:
            bad = ~(np.isfinite(arr) & np.isfinite(dep) & (dep > arr))
            if bad.any():
                i = int(bad.argmax())
                raise ValidationError(
                    f"item {ids_a[i]}: invalid interval "
                    f"[{arr[i]}, {dep[i]}) (need finite arrival < departure)"
                )
            bad_size = ~((sz > 0.0) & (sz <= 1.0)).all(axis=1)
            if bad_size.any():
                i = int(bad_size.argmax())
                raise ValidationError(
                    f"item {ids_a[i]}: sizes must be in (0, 1], got "
                    f"{tuple(sz[i])}"
                )
        return cls(ids_a, arr, dep, sz)

    @classmethod
    def from_items(cls, items: "ItemList | Iterable[Item]") -> "ArrivalBatch":
        """Build a batch from already-validated items (no re-validation).

        The row order follows the iteration order of ``items`` (for an
        :class:`~repro.core.ItemList`, arrival order).
        """
        seq = list(items)
        n = len(seq)
        dims = len(seq[0].sizes) if n else 1
        ids = np.fromiter((r.id for r in seq), dtype=np.int64, count=n)
        arr = np.fromiter((r.arrival for r in seq), dtype=np.float64, count=n)
        dep = np.fromiter((r.departure for r in seq), dtype=np.float64, count=n)
        sz = np.empty((n, dims), dtype=np.float64)
        for i, r in enumerate(seq):
            sz[i] = r.sizes
        return cls(ids, arr, dep, sz)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self.ids.shape[0]

    @property
    def dims(self) -> int:
        """Number of resource dimensions ``d``."""
        return self.sizes.shape[1]

    def item(self, i: int) -> Item:
        """Materialise row ``i`` as an :class:`~repro.core.Item`."""
        return _trusted_item(
            int(self.ids[i]),
            tuple(self.sizes[i].tolist()),
            float(self.arrivals[i]),
            float(self.departures[i]),
        )

    def to_items(self) -> list[Item]:
        """Materialise every row (used when a result object is finally built)."""
        ids = self.ids.tolist()
        arr = self.arrivals.tolist()
        dep = self.departures.tolist()
        rows = self.sizes.tolist()
        return [
            _trusted_item(ids[i], tuple(rows[i]), arr[i], dep[i])
            for i in range(len(ids))
        ]

    def __iter__(self) -> Iterator[Item]:
        return iter(self.to_items())
