"""Typed metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Timer`.

Each metric is a tiny mutable cell identified by ``(name, labels)`` with a
kind-specific value and a deterministic :meth:`~Metric.merge` rule.  Metrics
are normally created through a
:class:`~repro.obs.TelemetryRegistry` (which interns them so every caller
naming the same ``(name, labels)`` pair shares one cell) and are plain
picklable objects, so they can cross process boundaries inside sweep
outcomes and snapshots.

Merge semantics (what happens when two runs' telemetry is combined):

* ``Counter`` — values add.
* ``Gauge`` — values combine under the gauge's declared ``aggregate``
  (``"last"``, ``"max"``, ``"min"`` or ``"sum"``); an unset gauge
  (``value is None``) never overrides a set one.
* ``Timer`` — total seconds and observation counts both add.

Counters and timers merge commutatively and associatively; only ``"last"``
gauges are order-sensitive, which is why registry merges always happen in a
deterministic (task-index) order.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["Counter", "Gauge", "Timer", "Metric", "LabelSet", "normalize_labels"]

#: Canonical hashable label form: sorted ``(key, value)`` string pairs.
LabelSet = tuple[tuple[str, str], ...]

#: Gauge aggregation policies accepted by :class:`Gauge`.
_GAUGE_AGGREGATES = ("last", "max", "min", "sum")


def normalize_labels(labels: Mapping[str, object]) -> LabelSet:
    """Canonical, hashable, sorted form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common shape of every metric cell: a name plus canonical labels.

    Subclasses define ``kind`` and the value payload; this base provides the
    shared identity and serialisation scaffolding.
    """

    __slots__ = ("name", "labels")

    #: Kind tag written into every export row (``counter``/``gauge``/``timer``).
    kind = ""

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> tuple[str, LabelSet]:
        """The registry interning key ``(name, labels)``."""
        return (self.name, self.labels)

    def labels_dict(self) -> dict[str, str]:
        """The labels as a plain dict (export form)."""
        return dict(self.labels)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict export row; subclasses extend with their payload."""
        return {"name": self.name, "kind": self.kind, "labels": self.labels_dict()}

    def merge(self, other: "Metric") -> None:
        """Fold ``other``'s payload into this cell (kind-specific)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.as_dict()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metric):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:  # identity-keyed cells are interned, not hashed
        return hash((type(self).__name__,) + self.key)


class Counter(Metric):
    """A monotonically growing count (items submitted, nodes expanded, …).

    ``value`` is a plain attribute so hot paths may also write it directly;
    merges add.
    """

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = (), value: int = 0) -> None:
        super().__init__(name, labels)
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def merge(self, other: Metric) -> None:
        """Add the other counter's value into this one."""
        self.value += other.value  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, value}``."""
        d = super().as_dict()
        d["value"] = self.value
        return d


class Gauge(Metric):
    """A point-in-time numeric observation (peaks, last ratio, totals).

    The ``aggregate`` policy decides both how repeated :meth:`set` calls
    combine and how two gauges merge: ``"last"`` keeps the newest value,
    ``"max"``/``"min"`` keep the extreme, ``"sum"`` accumulates.  A fresh
    gauge holds ``None`` until first set.
    """

    __slots__ = ("value", "aggregate")
    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        value: float | int | None = None,
        aggregate: str = "last",
    ) -> None:
        super().__init__(name, labels)
        if aggregate not in _GAUGE_AGGREGATES:
            raise ValueError(
                f"unknown gauge aggregate {aggregate!r}; one of {_GAUGE_AGGREGATES}"
            )
        self.value = value
        self.aggregate = aggregate

    def set(self, value: float | int) -> None:
        """Record an observation under the gauge's aggregation policy."""
        self.value = self._combine(self.value, value)

    def _combine(
        self, old: float | int | None, new: float | int | None
    ) -> float | int | None:
        if new is None:
            return old
        if old is None:
            return new
        if self.aggregate == "max":
            return max(old, new)
        if self.aggregate == "min":
            return min(old, new)
        if self.aggregate == "sum":
            return old + new
        return new  # "last"

    def merge(self, other: Metric) -> None:
        """Combine the other gauge's value under this gauge's policy."""
        self.value = self._combine(self.value, other.value)  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, value, aggregate}``."""
        d = super().as_dict()
        d["value"] = self.value
        d["aggregate"] = self.aggregate
        return d


class Timer(Metric):
    """Accumulated wall-clock seconds plus an observation count.

    ``seconds`` and ``count`` are plain attributes (hot paths may add to
    them directly); merges add both.  Span scopes record into timers.
    """

    __slots__ = ("seconds", "count")
    kind = "timer"

    def __init__(
        self, name: str, labels: LabelSet = (), seconds: float = 0.0, count: int = 0
    ) -> None:
        super().__init__(name, labels)
        self.seconds = seconds
        self.count = count

    def observe(self, seconds: float, count: int = 1) -> None:
        """Record one (or ``count``) timed observation(s) totalling ``seconds``."""
        self.seconds += seconds
        self.count += count

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Context manager measuring the enclosed block into this timer."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - t0)

    @property
    def mean_seconds(self) -> float:
        """Average seconds per observation (0.0 before any observation)."""
        return self.seconds / self.count if self.count else 0.0

    def merge(self, other: Metric) -> None:
        """Add the other timer's seconds and count into this one."""
        self.seconds += other.seconds  # type: ignore[attr-defined]
        self.count += other.count  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, seconds, count}``."""
        d = super().as_dict()
        d["seconds"] = self.seconds
        d["count"] = self.count
        return d
