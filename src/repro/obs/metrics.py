"""Typed metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Timer`.

Each metric is a tiny mutable cell identified by ``(name, labels)`` with a
kind-specific value and a deterministic :meth:`~Metric.merge` rule.  Metrics
are normally created through a
:class:`~repro.obs.TelemetryRegistry` (which interns them so every caller
naming the same ``(name, labels)`` pair shares one cell) and are plain
picklable objects, so they can cross process boundaries inside sweep
outcomes and snapshots.

Merge semantics (what happens when two runs' telemetry is combined):

* ``Counter`` — values add.
* ``Gauge`` — values combine under the gauge's declared ``aggregate``
  (``"last"``, ``"max"``, ``"min"`` or ``"sum"``); an unset gauge
  (``value is None``) never overrides a set one.
* ``Timer`` — total seconds and observation counts both add.
* ``Histogram`` — per-bucket counts, the exact observation count and the
  running sum all add; merging requires identical bucket bounds.

Counters, timers and histogram counts merge commutatively and
associatively (histogram *sums* are floating-point additions, so they are
exact only up to reassociation); only ``"last"`` gauges are
order-sensitive, which is why registry merges always happen in a
deterministic (task-index) order.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "Metric",
    "LabelSet",
    "normalize_labels",
    "default_latency_bounds",
]

#: Canonical hashable label form: sorted ``(key, value)`` string pairs.
LabelSet = tuple[tuple[str, str], ...]

#: Gauge aggregation policies accepted by :class:`Gauge`.
_GAUGE_AGGREGATES = ("last", "max", "min", "sum")


def normalize_labels(labels: Mapping[str, object]) -> LabelSet:
    """Canonical, hashable, sorted form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common shape of every metric cell: a name plus canonical labels.

    Subclasses define ``kind`` and the value payload; this base provides the
    shared identity and serialisation scaffolding.
    """

    __slots__ = ("name", "labels")

    #: Kind tag written into every export row (``counter``/``gauge``/``timer``).
    kind = ""

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> tuple[str, LabelSet]:
        """The registry interning key ``(name, labels)``."""
        return (self.name, self.labels)

    def labels_dict(self) -> dict[str, str]:
        """The labels as a plain dict (export form)."""
        return dict(self.labels)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict export row; subclasses extend with their payload."""
        return {"name": self.name, "kind": self.kind, "labels": self.labels_dict()}

    def merge(self, other: "Metric") -> None:
        """Fold ``other``'s payload into this cell (kind-specific)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.as_dict()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metric):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:  # identity-keyed cells are interned, not hashed
        return hash((type(self).__name__,) + self.key)


class Counter(Metric):
    """A monotonically growing count (items submitted, nodes expanded, …).

    ``value`` is a plain attribute so hot paths may also write it directly;
    merges add.
    """

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = (), value: int = 0) -> None:
        super().__init__(name, labels)
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def merge(self, other: Metric) -> None:
        """Add the other counter's value into this one."""
        self.value += other.value  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, value}``."""
        d = super().as_dict()
        d["value"] = self.value
        return d


class Gauge(Metric):
    """A point-in-time numeric observation (peaks, last ratio, totals).

    The ``aggregate`` policy decides both how repeated :meth:`set` calls
    combine and how two gauges merge: ``"last"`` keeps the newest value,
    ``"max"``/``"min"`` keep the extreme, ``"sum"`` accumulates.  A fresh
    gauge holds ``None`` until first set.
    """

    __slots__ = ("value", "aggregate")
    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        value: float | int | None = None,
        aggregate: str = "last",
    ) -> None:
        super().__init__(name, labels)
        if aggregate not in _GAUGE_AGGREGATES:
            raise ValueError(
                f"unknown gauge aggregate {aggregate!r}; one of {_GAUGE_AGGREGATES}"
            )
        self.value = value
        self.aggregate = aggregate

    def set(self, value: float | int) -> None:
        """Record an observation under the gauge's aggregation policy."""
        self.value = self._combine(self.value, value)

    def _combine(
        self, old: float | int | None, new: float | int | None
    ) -> float | int | None:
        if new is None:
            return old
        if old is None:
            return new
        if self.aggregate == "max":
            return max(old, new)
        if self.aggregate == "min":
            return min(old, new)
        if self.aggregate == "sum":
            return old + new
        return new  # "last"

    def merge(self, other: Metric) -> None:
        """Combine the other gauge's value under this gauge's policy."""
        self.value = self._combine(self.value, other.value)  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, value, aggregate}``."""
        d = super().as_dict()
        d["value"] = self.value
        d["aggregate"] = self.aggregate
        return d


class Timer(Metric):
    """Accumulated wall-clock seconds plus an observation count.

    ``seconds`` and ``count`` are plain attributes (hot paths may add to
    them directly); merges add both.  Span scopes record into timers.
    """

    __slots__ = ("seconds", "count")
    kind = "timer"

    def __init__(
        self, name: str, labels: LabelSet = (), seconds: float = 0.0, count: int = 0
    ) -> None:
        super().__init__(name, labels)
        self.seconds = seconds
        self.count = count

    def observe(self, seconds: float, count: int = 1) -> None:
        """Record one (or ``count``) timed observation(s) totalling ``seconds``."""
        self.seconds += seconds
        self.count += count

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Context manager measuring the enclosed block into this timer."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - t0)

    @property
    def mean_seconds(self) -> float:
        """Average seconds per observation (0.0 before any observation)."""
        return self.seconds / self.count if self.count else 0.0

    def merge(self, other: Metric) -> None:
        """Add the other timer's seconds and count into this one."""
        self.seconds += other.seconds  # type: ignore[attr-defined]
        self.count += other.count  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, seconds, count}``."""
        d = super().as_dict()
        d["seconds"] = self.seconds
        d["count"] = self.count
        return d


def default_latency_bounds(
    start: float = 1e-6, factor: float = 2.0, count: int = 24
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds for latency histograms.

    The default covers one microsecond to ~8.4 seconds at factor-2 spacing —
    wide enough for per-event engine latencies and per-slice adversary
    solves alike.  Values beyond the last bound land in the implicit
    overflow (``+Inf``) bucket every histogram carries.
    """
    return tuple(start * factor**i for i in range(count))


class Histogram(Metric):
    """A bucketed latency/size distribution with exact count and sum.

    ``bounds`` are the finite bucket *upper* edges (strictly increasing);
    bucket ``i`` counts observations ``v <= bounds[i]`` that exceeded every
    earlier bound, and one extra overflow bucket counts everything above the
    last bound, so ``counts`` has ``len(bounds) + 1`` entries.  ``count``
    and ``sum`` are exact over all observations regardless of bucketing.
    Merging adds counts/count/sum elementwise and requires identical bounds.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        bounds: Sequence[float] | None = None,
        counts: Sequence[int] | None = None,
        sum: float = 0.0,
        count: int = 0,
    ) -> None:
        super().__init__(name, labels)
        edges = tuple(float(b) for b in (bounds if bounds is not None else default_latency_bounds()))
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing and non-empty: {edges}")
        if any(not math.isfinite(b) for b in edges):
            raise ValueError(f"histogram bounds must be finite (+Inf is implicit): {edges}")
        self.bounds = edges
        if counts is None:
            self.counts = [0] * (len(edges) + 1)
        else:
            if len(counts) != len(edges) + 1:
                raise ValueError(
                    f"histogram needs {len(edges) + 1} bucket counts "
                    f"(finite buckets + overflow), got {len(counts)}"
                )
            self.counts = [int(c) for c in counts]
        self.sum = float(sum)
        self.count = int(count)

    def observe(self, value: float) -> None:
        """Record one observation (bucketed by ``v <= bound`` semantics)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 before any observation)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Running totals per bucket (the Prometheus ``le`` series shape)."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation.

        Conservative by construction (the true value is ≤ the returned
        bucket edge); returns 0.0 with no observations and ``math.inf`` when
        the quantile lands in the overflow bucket.

        Raises:
            ValueError: if ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        total = 0
        for i, c in enumerate(self.counts):
            total += c
            if total >= rank:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover - cumulative total always reaches count

    def merge(self, other: Metric) -> None:
        """Add the other histogram's buckets, count and sum into this one.

        Raises:
            ValueError: if the bucket bounds differ.
        """
        if self.bounds != other.bounds:  # type: ignore[attr-defined]
            raise ValueError(
                f"cannot merge histograms with different bounds for {self.name!r}"
            )
        for i, c in enumerate(other.counts):  # type: ignore[attr-defined]
            self.counts[i] += c
        self.sum += other.sum  # type: ignore[attr-defined]
        self.count += other.count  # type: ignore[attr-defined]

    def as_dict(self) -> dict[str, object]:
        """Export row: ``{name, kind, labels, bounds, counts, sum, count}``."""
        d = super().as_dict()
        d["bounds"] = list(self.bounds)
        d["counts"] = list(self.counts)
        d["sum"] = self.sum
        d["count"] = self.count
        return d
