"""The :class:`TelemetryRegistry`: one home for every metric of a run.

A registry interns metric cells by ``(name, labels)`` — every component that
asks for ``registry.counter("solver.nodes")`` gets the same
:class:`~repro.obs.Counter`, so the engine, the adversary, the sweep driver
and the CLI all write into one coherent store.  Registries are plain
picklable objects (no locks, no threads), so sweep workers ship them back
through a ``ProcessPoolExecutor`` either whole or as a compact
:class:`TelemetrySnapshot`; :meth:`TelemetryRegistry.merge` folds snapshots
or registries back together deterministically (callers merge in task-index
order, making even ``"last"`` gauges reproducible).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from .metrics import Counter, Gauge, Histogram, LabelSet, Metric, Timer, normalize_labels
from .trace import SPAN_PREFIX, enabled, span_path

__all__ = ["TelemetryRegistry", "TelemetrySnapshot", "metric_from_dict"]

_KINDS: dict[str, type[Metric]] = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Timer.kind: Timer,
    Histogram.kind: Histogram,
}


def metric_from_dict(data: Mapping[str, object]) -> Metric:
    """Rebuild a metric cell from its :meth:`~repro.obs.Metric.as_dict` row.

    Raises:
        ValueError: on an unknown ``kind``.
    """
    kind = str(data.get("kind", ""))
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown metric kind {kind!r}; one of {sorted(_KINDS)}")
    name = str(data["name"])
    labels = normalize_labels(data.get("labels") or {})
    if cls is Counter:
        return Counter(name, labels, value=int(data.get("value") or 0))
    if cls is Gauge:
        value = data.get("value")
        if value is not None and not isinstance(value, (int, float)):
            value = float(value)  # type: ignore[arg-type]
        return Gauge(
            name,
            labels,
            value=value,  # int stays int: gauges must round-trip without coercion
            aggregate=str(data.get("aggregate", "last")),
        )
    if cls is Histogram:
        return Histogram(
            name,
            labels,
            bounds=tuple(float(b) for b in data["bounds"]),  # type: ignore[union-attr]
            counts=[int(c) for c in data["counts"]],  # type: ignore[union-attr]
            sum=float(data.get("sum") or 0.0),
            count=int(data.get("count") or 0),
        )
    return Timer(
        name,
        labels,
        seconds=float(data.get("seconds") or 0.0),
        count=int(data.get("count") or 0),
    )


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A compact, immutable, picklable export of a registry's metrics.

    ``metrics`` holds one plain :meth:`~repro.obs.Metric.as_dict` row per
    cell, sorted by ``(name, labels)`` — the wire format sweep workers send
    back and the JSON exporters serialise.
    """

    metrics: tuple[dict[str, object], ...] = ()

    def __len__(self) -> int:
        return len(self.metrics)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form: ``{"metrics": [row, ...]}``."""
        return {"metrics": [dict(m) for m in self.metrics]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TelemetrySnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output (JSON round-trip)."""
        rows = data.get("metrics") or []
        return cls(metrics=tuple(dict(r) for r in rows))  # type: ignore[union-attr]


class TelemetryRegistry:
    """Interned metric cells plus hierarchical span tracing for one run.

    The registry is deliberately lock-free: like the legacy stats
    dataclasses it replaces, each instance has one writing owner (a session,
    a sweep cell, a CLI invocation); cross-process and cross-run aggregation
    goes through :meth:`snapshot` / :meth:`merge`, which are deterministic
    when applied in a fixed order.
    """

    __slots__ = ("_metrics", "_span_stack")

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], Metric] = {}
        self._span_stack: list[str] = []

    # -- cell access ---------------------------------------------------------

    def _intern(self, cls: type[Metric], name: str, labels: LabelSet, **kwargs: object):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)  # type: ignore[arg-type]
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} {dict(labels)!r} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, /, **labels: object) -> Counter:
        """The interned :class:`~repro.obs.Counter` for ``(name, labels)``."""
        return self._intern(Counter, name, normalize_labels(labels))

    def gauge(self, name: str, /, *, aggregate: str = "last", **labels: object) -> Gauge:
        """The interned :class:`~repro.obs.Gauge` for ``(name, labels)``.

        ``aggregate`` only applies on first creation; later calls return the
        existing cell with its original policy.
        """
        return self._intern(Gauge, name, normalize_labels(labels), aggregate=aggregate)

    def timer(self, name: str, /, **labels: object) -> Timer:
        """The interned :class:`~repro.obs.Timer` for ``(name, labels)``."""
        return self._intern(Timer, name, normalize_labels(labels))

    def histogram(
        self, name: str, /, *, bounds: tuple[float, ...] | None = None, **labels: object
    ) -> Histogram:
        """The interned :class:`~repro.obs.Histogram` for ``(name, labels)``.

        ``bounds`` (finite, strictly increasing bucket upper edges; default
        :func:`~repro.obs.default_latency_bounds`) only applies on first
        creation; later calls return the existing cell with its original
        buckets.
        """
        return self._intern(Histogram, name, normalize_labels(labels), bounds=bounds)

    def get(self, name: str, /, **labels: object) -> Metric | None:
        """The existing cell for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, normalize_labels(labels)))

    def metrics(self) -> list[Metric]:
        """Every cell, sorted by ``(name, labels)`` for deterministic output."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def clear(self) -> None:
        """Drop every cell and any open span state."""
        self._metrics.clear()
        self._span_stack.clear()

    # -- span tracing --------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[str]:
        """A named, timed, hierarchical trace scope.

        Yields the span's slash-joined path (``parent/child``).  Wall-clock
        time is recorded into the timer ``span:<path>`` unless telemetry is
        globally disabled (:func:`repro.obs.set_enabled`), in which case the
        scope is a pure pass-through.
        """
        if not enabled():
            yield span_path(self._span_stack, name)
            return
        path = span_path(self._span_stack, name)
        self._span_stack.append(name)
        t0 = time.perf_counter()
        try:
            yield path
        finally:
            elapsed = time.perf_counter() - t0
            self._span_stack.pop()
            self.timer(SPAN_PREFIX + path).observe(elapsed)

    def spans(self) -> dict[str, Timer]:
        """Recorded span timers keyed by their hierarchical path."""
        return {
            m.name[len(SPAN_PREFIX):]: m
            for m in self.metrics()
            if isinstance(m, Timer) and m.name.startswith(SPAN_PREFIX)
        }

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """An immutable, picklable copy of every cell (sorted)."""
        return TelemetrySnapshot(metrics=tuple(m.as_dict() for m in self.metrics()))

    def merge(self, other: "TelemetryRegistry | TelemetrySnapshot") -> None:
        """Fold another registry's (or snapshot's) cells into this one.

        Cells are matched by ``(name, labels)`` and combined under each
        kind's merge rule (counters/timers add, gauges follow their
        aggregate).  Merging in a fixed order (e.g. sweep task index) makes
        the result reproducible run-to-run.
        """
        if isinstance(other, TelemetryRegistry):
            incoming: list[Metric] = other.metrics()
        else:
            incoming = [metric_from_dict(row) for row in other.metrics]
        for metric in incoming:
            key = (metric.name, metric.labels)
            mine = self._metrics.get(key)
            if mine is None:
                # Adopt a copy so later merges never mutate the source.
                adopted = metric_from_dict(metric.as_dict())
                self._metrics[key] = adopted
            else:
                if mine.kind != metric.kind:
                    raise ValueError(
                        f"cannot merge {metric.kind} into {mine.kind} for "
                        f"metric {metric.name!r}"
                    )
                mine.merge(metric)

    # -- serialisation -------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """Plain-dict export (same shape as ``snapshot().as_dict()``)."""
        return self.snapshot().as_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TelemetryRegistry":
        """Rebuild a registry from :meth:`as_dict` output (JSON round-trip)."""
        registry = cls()
        registry.merge(TelemetrySnapshot.from_dict(data))
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetryRegistry):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"TelemetryRegistry({len(self)} metrics)"

    def __getstate__(self) -> dict[str, object]:
        """Pickle the cells; open-span state never crosses a process."""
        return {"metrics": self._metrics, "span_stack": []}

    def __setstate__(self, state: dict[str, object]) -> None:
        """Restore from :meth:`__getstate__` output."""
        self._metrics = state["metrics"]  # type: ignore[assignment]
        self._span_stack = list(state.get("span_stack") or [])
