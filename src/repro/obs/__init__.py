"""repro.obs — the unified telemetry core.

One observability substrate for the whole system: typed
:class:`Counter` / :class:`Gauge` / :class:`Timer` metrics interned in a
:class:`TelemetryRegistry` (with label support), hierarchical
:meth:`~TelemetryRegistry.span` trace scopes with wall-clock timing,
process-safe :meth:`~TelemetryRegistry.snapshot` /
:meth:`~TelemetryRegistry.merge` (sweep workers ship registries back through
the ``ProcessPoolExecutor`` and the driver merges them deterministically),
and dict / NDJSON exporters behind the CLI's ``--json`` and ``--obs``
flags.  On top of the core sit a log-bucketed :class:`Histogram` kind for
latency tails (engine per-event, solver per-solve, sweep per-cell), a
collapsed-stack flamegraph exporter over the span tree
(:func:`export_flamegraph`), and a Prometheus text-exposition renderer
plus localhost scrape endpoint (:func:`prometheus_text`,
:class:`MetricsServer`) behind the CLI's ``serve --metrics-port``.

Every legacy stats surface is a thin view over this substrate:
:class:`repro.engine.EngineStats`, :class:`repro.algorithms.SolverStats`,
the :class:`repro.simulation.PackingMetrics` recording in ``evaluate``, and
the sweep counter merging in :func:`repro.analysis.run_sweep` all read and
write registry cells, so one export shows a run end to end.  Telemetry
*timing* can be switched off process-wide with :func:`set_enabled` (the
counters themselves always count — they are public API); packing and
adversary results are bit-identical either way, and
``benchmarks/bench_obs_overhead.py`` holds the instrumentation cost under
3% on the engine-throughput and ``opt_total`` workloads.

See ``docs/OBSERVABILITY.md`` for metric names, the span hierarchy and the
export formats.
"""

from .export import export_dict, load_ndjson, ndjson_lines, write_ndjson
from .flamegraph import export_flamegraph, flamegraph_lines
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelSet,
    Metric,
    Timer,
    default_latency_bounds,
    normalize_labels,
)
from .prometheus import MetricsServer, prometheus_text, validate_exposition
from .registry import TelemetryRegistry, TelemetrySnapshot, metric_from_dict
from .trace import SPAN_PREFIX, disabled, enabled, set_enabled, span_path

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "Metric",
    "LabelSet",
    "normalize_labels",
    "default_latency_bounds",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "metric_from_dict",
    "export_dict",
    "ndjson_lines",
    "write_ndjson",
    "load_ndjson",
    "flamegraph_lines",
    "export_flamegraph",
    "prometheus_text",
    "validate_exposition",
    "MetricsServer",
    "SPAN_PREFIX",
    "span_path",
    "enabled",
    "set_enabled",
    "disabled",
]
