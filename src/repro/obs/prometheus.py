"""Prometheus text-exposition rendering and a localhost scrape endpoint.

:func:`prometheus_text` renders a :class:`~repro.obs.TelemetryRegistry`
(or snapshot) in the Prometheus text exposition format (version 0.0.4):
``# TYPE`` declarations followed by samples, one family per metric name.
The four metric kinds map onto Prometheus conventions:

* ``Counter`` → a ``counter`` family named ``repro_<name>_total``;
* ``Gauge`` → a ``gauge`` family (unset cells are skipped);
* ``Timer`` → a ``summary`` family exposing ``_sum`` (seconds) and
  ``_count`` samples;
* ``Histogram`` → a ``histogram`` family with cumulative ``_bucket``
  samples (``le`` upper edges plus ``+Inf``), ``_sum`` and ``_count``.

Metric names are sanitised (``.``, ``:`` and ``/`` become ``_``) and
prefixed with ``repro_``, so ``engine.items_submitted`` scrapes as
``repro_engine_items_submitted_total``.

:class:`MetricsServer` serves the rendering over stdlib ``http.server`` on
localhost (``GET /metrics``), reading the live registry on every scrape —
the CLI's ``serve --metrics-port`` uses it so a replaying trace can be
watched from Prometheus/Grafana or plain ``curl``.  A scrape may race the
single writer thread; the renderer retries the handful of times a dict
mutation can interleave, and a scrape never blocks or mutates the run.

:func:`validate_exposition` is a strict syntax checker for the format,
used by the test suite (and handy for asserting on scraped output).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .metrics import Counter, Gauge, Histogram, Metric, Timer
from .registry import TelemetryRegistry, TelemetrySnapshot

__all__ = ["prometheus_text", "validate_exposition", "MetricsServer"]

#: Prefix applied to every exported family name.
NAMESPACE = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """A valid Prometheus metric name for one registry metric name."""
    san = _INVALID_CHARS.sub("_", name)
    if not san or san[0].isdigit():
        san = "_" + san
    return NAMESPACE + san


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_INVALID_CHARS.sub("_", k)}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float | int) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"non-numeric sample value: {value!r}")
    return str(value) if isinstance(value, int) else repr(float(value))


def _family(metric: Metric) -> tuple[str, str]:
    """The (family name, prometheus type) one metric cell belongs to."""
    san = _sanitize(metric.name)
    if isinstance(metric, Counter):
        return san + "_total", "counter"
    if isinstance(metric, Gauge):
        return san, "gauge"
    if isinstance(metric, Timer):
        # engine.submit_seconds → repro_engine_submit_seconds (not .._seconds_seconds)
        return (san if san.endswith("_seconds") else san + "_seconds"), "summary"
    return san, "histogram"


def _render_registry(registry: TelemetryRegistry) -> str:
    lines: list[str] = []
    declared: set[str] = set()
    for metric in registry.metrics():
        family, kind = _family(metric)
        samples: list[str] = []
        if isinstance(metric, Counter):
            samples.append(f"{family}{_render_labels(metric.labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            samples.append(f"{family}{_render_labels(metric.labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Timer):
            labels = _render_labels(metric.labels)
            samples.append(f"{family}_sum{labels} {_fmt(metric.seconds)}")
            samples.append(f"{family}_count{labels} {_fmt(metric.count)}")
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, running in zip(metric.bounds, cumulative):
                le = _render_labels(metric.labels, extra=f'le="{repr(float(bound))}"')
                samples.append(f"{family}_bucket{le} {running}")
            inf = _render_labels(metric.labels, extra='le="+Inf"')
            samples.append(f"{family}_bucket{inf} {cumulative[-1]}")
            labels = _render_labels(metric.labels)
            samples.append(f"{family}_sum{labels} {_fmt(metric.sum)}")
            samples.append(f"{family}_count{labels} {_fmt(metric.count)}")
        else:  # pragma: no cover - every registry kind is handled above
            continue
        if family not in declared:
            declared.add(family)
            lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "".join(line + "\n" for line in lines)


def prometheus_text(source: TelemetryRegistry | TelemetrySnapshot) -> str:
    """The telemetry as Prometheus text exposition format (version 0.0.4)."""
    if isinstance(source, TelemetrySnapshot):
        registry = TelemetryRegistry()
        registry.merge(source)
        return _render_registry(registry)
    # A live registry may gain cells while another thread renders it;
    # interning never removes cells, so a short retry always converges.
    for _ in range(8):
        try:
            return _render_registry(source)
        except RuntimeError:  # dict mutated during iteration
            continue
    return _render_registry(TelemetryRegistry.from_dict(source.as_dict()))


# ---------------------------------------------------------------------------
# Syntax checking
# ---------------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r'\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\}'
_VALUE = r"[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|Inf|NaN)"
_SAMPLE_RE = re.compile(rf"^({_NAME})(?:{_LABELS})? {_VALUE}(?: -?\d+)?$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_HELP_RE = re.compile(rf"^# HELP {_NAME} .*$")


def validate_exposition(text: str) -> int:
    """Check ``text`` against the exposition-format syntax; returns sample count.

    Accepts ``# TYPE`` / ``# HELP`` / free comments, blank lines and sample
    lines (with optional labels and timestamp).  Each family may be typed at
    most once and must be declared before its samples.

    Raises:
        ValueError: on the first malformed or out-of-order line.
    """
    declared: set[str] = set()
    sampled: set[str] = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _TYPE_RE.match(line)
            if m:
                if m.group(1) in declared:
                    raise ValueError(f"line {lineno}: duplicate # TYPE for {m.group(1)}")
                if any(
                    name == m.group(1) or name.startswith(m.group(1) + "_")
                    for name in sampled
                ):
                    raise ValueError(
                        f"line {lineno}: # TYPE for {m.group(1)} after its samples"
                    )
                declared.add(m.group(1))
                continue
            if line.startswith("# TYPE"):
                raise ValueError(f"line {lineno}: malformed # TYPE line: {line!r}")
            if line.startswith("# HELP") and not _HELP_RE.match(line):
                raise ValueError(f"line {lineno}: malformed # HELP line: {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name = m.group(1)
        if declared and not any(
            name == fam or name.startswith(fam + "_") for fam in declared
        ):
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE family")
        sampled.add(name)
        samples += 1
    if not samples:
        raise ValueError("no samples in exposition text")
    return samples


# ---------------------------------------------------------------------------
# The scrape endpoint
# ---------------------------------------------------------------------------


class _ScrapeHandler(BaseHTTPRequestHandler):
    """GET /metrics → the current registry rendering; anything else → 404."""

    server: "_ScrapeServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0].rstrip("/") in ("", "/metrics"):
            body = self.server.render().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "only /metrics is served")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # scrapes must not spam the CLI's stdout/stderr


class _ScrapeServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, source: Callable[[], TelemetryRegistry]) -> None:
        super().__init__(address, _ScrapeHandler)
        self._source = source

    def render(self) -> str:
        return prometheus_text(self._source())


class MetricsServer:
    """A localhost Prometheus scrape endpoint over a live registry.

    Args:
        source: The registry to expose, or a zero-argument callable
            returning it (re-evaluated on every scrape).
        host: Bind address; localhost only by default — this is a
            diagnostics endpoint, not a hardened service.
        port: TCP port; ``0`` lets the OS pick (read :attr:`port` after
            :meth:`start`).

    Usable as a context manager (``with MetricsServer(reg) as server:``).
    """

    def __init__(
        self,
        source: TelemetryRegistry | Callable[[], TelemetryRegistry],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source if callable(source) else (lambda: source)
        self._host = host
        self._requested_port = port
        self._server: _ScrapeServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (0 before :meth:`start`)."""
        return self._server.server_address[1] if self._server is not None else 0

    @property
    def url(self) -> str:
        """The scrape URL (valid after :meth:`start`)."""
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        self._server = _ScrapeServer((self._host, self._requested_port), self._source)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
