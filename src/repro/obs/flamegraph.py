"""Collapsed-stack flamegraph export from the registry's span timers.

The registry's hierarchical :meth:`~repro.obs.TelemetryRegistry.span`
scopes record inclusive wall-clock time into timers named
``span:parent/child``.  :func:`export_flamegraph` converts them into the
*collapsed stack* format understood by Brendan Gregg's ``flamegraph.pl``
and by speedscope's "Brendan Gregg collapsed" importer: one line per stack,
frames joined by semicolons, followed by a space and an integer weight —

    cli.sweep;sweep.cell 48123

Weights are **self** time in integer microseconds: each span's inclusive
seconds minus the inclusive seconds of its direct children (clamped at
zero — sampled or re-entered spans can make children nominally exceed the
parent).  Summing a subtree therefore reproduces the parent's inclusive
time, which is exactly what flamegraph renderers expect.
"""

from __future__ import annotations

import os
from pathlib import Path

from .registry import TelemetryRegistry, TelemetrySnapshot

__all__ = ["flamegraph_lines", "export_flamegraph"]


def flamegraph_lines(source: TelemetryRegistry | TelemetrySnapshot) -> list[str]:
    """Collapsed-stack lines (``frame;frame weight``) from recorded spans.

    One line per span path, sorted by stack for deterministic output; spans
    whose self time rounds to zero microseconds are kept (weight ``0``),
    so every recorded path stays visible in the profile.
    """
    if isinstance(source, TelemetrySnapshot):
        registry = TelemetryRegistry()
        registry.merge(source)
    else:
        registry = source
    inclusive = {path: timer.seconds for path, timer in registry.spans().items()}
    lines = []
    for path in sorted(inclusive):
        children = sum(
            seconds
            for other, seconds in inclusive.items()
            if other.startswith(path + "/") and "/" not in other[len(path) + 1:]
        )
        self_micros = max(0, int(round((inclusive[path] - children) * 1e6)))
        lines.append(f"{';'.join(path.split('/'))} {self_micros}")
    return lines


def export_flamegraph(
    source: TelemetryRegistry | TelemetrySnapshot,
    path: str | os.PathLike[str] | None = None,
) -> list[str]:
    """Emit the collapsed-stack profile, optionally writing it to ``path``.

    Returns the lines either way; feed the file to ``flamegraph.pl`` or
    drag it into https://speedscope.app to browse the span tree visually.
    """
    lines = flamegraph_lines(source)
    if path is not None:
        Path(path).write_text("".join(line + "\n" for line in lines))
    return lines
