"""The global telemetry switch and hierarchical span scopes.

A *span* is a named, timed scope: entering ``registry.span("sweep.cell")``
inside ``registry.span("cli.sweep")`` records wall-clock time into a
:class:`~repro.obs.Timer` named ``span:cli.sweep/sweep.cell`` — the slash
path encodes the hierarchy, so exports reconstruct the call tree without a
separate span table.

Telemetry can be switched off process-wide with :func:`set_enabled` (or
temporarily with the :func:`disabled` context manager): spans then skip the
clock reads entirely and instrumented hot paths (the engine's submit/advance
timers) skip theirs, so the overhead bench can measure exactly what the
instrumentation costs.  Counters keep counting either way — they are part of
the public stats API, not optional tracing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "set_enabled", "disabled", "SPAN_PREFIX", "span_path"]

#: Metric-name prefix distinguishing span timers from ordinary timers.
SPAN_PREFIX = "span:"

_ENABLED = True


def enabled() -> bool:
    """Whether telemetry timing (spans, engine timers) is currently on."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Switch telemetry timing on or off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager running the enclosed block with telemetry off."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def span_path(stack: list[str], name: str) -> str:
    """The hierarchical path of span ``name`` under the open-span ``stack``."""
    return "/".join((*stack, name))
