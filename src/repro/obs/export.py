"""Telemetry exporters: plain dicts and NDJSON files.

Two formats, one source of truth (:meth:`~repro.obs.Metric.as_dict` rows):

* :func:`export_dict` — a single JSON-serialisable dict
  (``{"metrics": [row, ...]}``), the shape the CLI's ``--json`` output and
  the round-trip tests use;
* :func:`write_ndjson` / :func:`ndjson_lines` — newline-delimited JSON, one
  metric row per line, the append-friendly shape behind the CLI's
  ``--obs FILE`` flag (and trivially greppable / ``jq``-able).

:func:`load_ndjson` and :meth:`~repro.obs.TelemetryRegistry.from_dict`
rebuild a registry from either format without drift.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .registry import TelemetryRegistry, TelemetrySnapshot

__all__ = ["export_dict", "ndjson_lines", "write_ndjson", "load_ndjson"]


def export_dict(source: TelemetryRegistry | TelemetrySnapshot) -> dict[str, object]:
    """The registry (or snapshot) as one JSON-serialisable dict."""
    return source.as_dict()


def ndjson_lines(source: TelemetryRegistry | TelemetrySnapshot) -> list[str]:
    """One compact JSON document per metric row, sorted deterministically."""
    rows = export_dict(source)["metrics"]
    return [json.dumps(row, sort_keys=True) for row in rows]  # type: ignore[union-attr]


def write_ndjson(
    source: TelemetryRegistry | TelemetrySnapshot, path: str | os.PathLike[str]
) -> int:
    """Write the telemetry export to ``path`` as NDJSON; returns rows written."""
    lines = ndjson_lines(source)
    Path(path).write_text("".join(line + "\n" for line in lines))
    return len(lines)


def load_ndjson(path: str | os.PathLike[str]) -> TelemetryRegistry:
    """Rebuild a registry from a :func:`write_ndjson` file.

    Raises:
        ValueError: on a malformed line or an unknown metric kind.
    """
    rows = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            rows.append(json.loads(line))
    registry = TelemetryRegistry()
    registry.merge(TelemetrySnapshot(metrics=tuple(rows)))
    return registry
