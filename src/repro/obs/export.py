"""Telemetry exporters: plain dicts and NDJSON files, with filtering.

Two formats, one source of truth (:meth:`~repro.obs.Metric.as_dict` rows):

* :func:`export_dict` — a single JSON-serialisable dict
  (``{"metrics": [row, ...]}``), the shape the CLI's ``--json`` output and
  the round-trip tests use;
* :func:`write_ndjson` / :func:`ndjson_lines` — newline-delimited JSON, one
  metric row per line, the append-friendly shape behind the CLI's
  ``--obs FILE`` flag (and trivially greppable / ``jq``-able).

Every exporter accepts the same two optional selectors, so large sweep
registries can be exported without the full cell set:

* ``match`` — a shell-style glob on the metric name
  (``write_ndjson(registry, path, match="solver.*")``);
* ``labels`` — a mapping every exported cell's labels must contain
  (``labels={"algorithm": "first-fit"}``).

:func:`load_ndjson` and :meth:`~repro.obs.TelemetryRegistry.from_dict`
rebuild a registry from either format without drift.
"""

from __future__ import annotations

import json
import os
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Mapping

from .registry import TelemetryRegistry, TelemetrySnapshot

__all__ = ["export_dict", "ndjson_lines", "write_ndjson", "load_ndjson"]


def _row_selected(
    row: Mapping[str, object],
    match: str | None,
    labels: Mapping[str, object] | None,
) -> bool:
    """Whether one exported metric row passes the ``match``/``labels`` filters."""
    if match is not None and not fnmatchcase(str(row.get("name", "")), match):
        return False
    if labels:
        row_labels = row.get("labels") or {}
        for key, value in labels.items():
            if row_labels.get(str(key)) != str(value):  # type: ignore[union-attr]
                return False
    return True


def export_dict(
    source: TelemetryRegistry | TelemetrySnapshot,
    *,
    match: str | None = None,
    labels: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """The registry (or snapshot) as one JSON-serialisable dict.

    ``match`` (name glob) and ``labels`` (required label subset) restrict
    which cells are exported; omitted, every cell is included.
    """
    doc = source.as_dict()
    if match is None and not labels:
        return doc
    rows = doc["metrics"]
    return {"metrics": [r for r in rows if _row_selected(r, match, labels)]}  # type: ignore[union-attr]


def ndjson_lines(
    source: TelemetryRegistry | TelemetrySnapshot,
    *,
    match: str | None = None,
    labels: Mapping[str, object] | None = None,
) -> list[str]:
    """One compact JSON document per selected metric row, sorted deterministically."""
    rows = export_dict(source, match=match, labels=labels)["metrics"]
    return [json.dumps(row, sort_keys=True) for row in rows]  # type: ignore[union-attr]


def write_ndjson(
    source: TelemetryRegistry | TelemetrySnapshot,
    path: str | os.PathLike[str],
    *,
    match: str | None = None,
    labels: Mapping[str, object] | None = None,
) -> int:
    """Write the (filtered) telemetry export to ``path`` as NDJSON; returns rows written."""
    lines = ndjson_lines(source, match=match, labels=labels)
    Path(path).write_text("".join(line + "\n" for line in lines))
    return len(lines)


def load_ndjson(path: str | os.PathLike[str]) -> TelemetryRegistry:
    """Rebuild a registry from a :func:`write_ndjson` file.

    Raises:
        ValueError: on a malformed line or an unknown metric kind.
    """
    rows = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            rows.append(json.loads(line))
    registry = TelemetryRegistry()
    registry.merge(TelemetrySnapshot(metrics=tuple(rows)))
    return registry
