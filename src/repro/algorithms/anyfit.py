"""The Any Fit family of online packers: First/Best/Worst/Last Fit + Next Fit.

These are the non-clairvoyant baselines analysed by Li et al. [17, 19],
Kamali & López-Ortiz [13] and Tang et al. [24], reproduced here both as
baselines and as the building block of the paper's classification strategies
(classify-by-departure-time / classify-by-duration First Fit run First Fit
within each item category).

An *Any Fit* algorithm opens a new bin only when no currently open bin can
accommodate the incoming item.  The family members differ only in which
accommodating open bin they choose:

* **First Fit** — the open bin that was opened earliest (competitive ratio
  ≤ μ+4 in the non-clairvoyant setting [24]);
* **Best Fit** — the fullest accommodating bin (unbounded ratio for any μ);
* **Worst Fit** — the emptiest accommodating bin;
* **Last Fit** — the most recently opened accommodating bin.

**Next Fit** is *not* an Any Fit algorithm: it keeps a single *current* bin
and abandons it (while still paying for its remaining usage) whenever an item
does not fit, achieving ratio ≤ 2μ+1 [13].

Placement decisions use only the bins' levels at the arrival instant, so the
same code is valid in both the clairvoyant and non-clairvoyant information
models: for arrival-order packing the level of an open bin can only decrease
in the item's future, hence "fits now" ⇔ "fits throughout" (cross-checked in
tests against the full-interval fit check).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.bins import Bin
from ..core.items import Item
from .base import OnlinePacker, register_packer

__all__ = [
    "AnyFitPacker",
    "FirstFitPacker",
    "BestFitPacker",
    "WorstFitPacker",
    "LastFitPacker",
    "RandomFitPacker",
    "NextFitPacker",
]


class AnyFitPacker(OnlinePacker):
    """Base class implementing the Any Fit contract.

    Subclasses override :meth:`choose` to pick among the accommodating open
    bins; :meth:`place` opens a new bin only when ``choose`` has no
    candidates, which is exactly the Any Fit property.
    """

    def place(self, item: Item) -> int:
        t = item.arrival
        candidates = [b for b in self.open_bins_at(t) if b.fits_at_arrival(item)]
        target = self.choose(item, candidates) if candidates else None
        if target is None:
            target = self.open_bin()
        return self.commit(target, item)

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin | None:
        """Pick one of ``candidates`` (non-empty, in opening order)."""
        raise NotImplementedError


@register_packer("first-fit")
class FirstFitPacker(AnyFitPacker):
    """First Fit: earliest-opened accommodating bin (paper §5.2)."""

    name = "first-fit"

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin:
        return candidates[0]


@register_packer("best-fit")
class BestFitPacker(AnyFitPacker):
    """Best Fit: fullest accommodating bin, ties to the earliest opened."""

    name = "best-fit"

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin:
        t = item.arrival
        return max(candidates, key=lambda b: (b.level_at(t), -b.index))


@register_packer("worst-fit")
class WorstFitPacker(AnyFitPacker):
    """Worst Fit: emptiest accommodating bin, ties to the earliest opened."""

    name = "worst-fit"

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin:
        t = item.arrival
        return min(candidates, key=lambda b: (b.level_at(t), b.index))


@register_packer("last-fit")
class LastFitPacker(AnyFitPacker):
    """Last Fit: most recently opened accommodating bin."""

    name = "last-fit"

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin:
        return candidates[-1]


@register_packer("random-fit")
class RandomFitPacker(AnyFitPacker):
    """Random Fit: uniformly random accommodating bin (seeded).

    Not analysed in the paper; included as an Any Fit family member for
    empirical comparison (any Any Fit algorithm is ≥ (μ+1)-competitive).
    """

    name = "random-fit"

    def __init__(self, seed: int | None = 0) -> None:
        super().__init__()
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)

    def describe(self) -> str:
        return f"random-fit(seed={self._seed})"

    def choose(self, item: Item, candidates: Sequence[Bin]) -> Bin:
        return candidates[int(self._rng.integers(len(candidates)))]


@register_packer("next-fit")
class NextFitPacker(OnlinePacker):
    """Next Fit: keep one current bin; abandon it when an item does not fit.

    Kamali & López-Ortiz [13] showed Next Fit is (2μ+1)-competitive for
    Non-Clairvoyant MinUsageTime DBP.  An abandoned bin stays in the packing
    (its already-placed items keep it in use until they depart) but never
    receives another item.
    """

    name = "next-fit"

    def __init__(self) -> None:
        super().__init__()
        self._current: Bin | None = None

    def reset(self) -> None:
        super().reset()
        self._current = None

    def place(self, item: Item) -> int:
        t = item.arrival
        cur = self._current
        # A closed current bin (all items departed) is also abandoned.
        if cur is not None and (not cur.is_open_at(t) or not cur.fits_at_arrival(item)):
            cur = None
        if cur is None:
            cur = self.open_bin()
            self._current = cur
        return self.commit(cur, item)
