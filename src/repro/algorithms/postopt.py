"""Post-optimisation: merge bins of a finished packing.

Any feasible packing can be improved *after the fact* by merging pairs of
bins whose combined level profile never exceeds the capacity: the merged
bin's usage is the span of the union, which is at most the sum of the two
spans — so total usage only decreases (strictly, when the bins' usage
periods overlap).  Crucially this preserves every approximation guarantee
of the producing algorithm, since the objective only improves and
feasibility is re-checked exactly.

The paper's Dual Coloring is the natural customer: its Phase 2 opens
``2m−1`` structurally-determined bins, many of which coexist at low levels;
merging recovers most of the average-case gap to DDFF while keeping
Theorem 2's worst-case 4× guarantee (see ``bench_ablation_merge``).

This is *not* migration: items keep one bin for their whole interval — the
merge relabels whole bins before deployment, which the offline model allows.
"""

from __future__ import annotations

from ..core.packing import PackingResult
from ..core.stepfun import DEFAULT_TOL, StepFunction
from .base import OfflinePacker, register_packer

__all__ = ["merge_bins", "DualColoringMergedPacker"]


def _bin_profiles(result: PackingResult) -> dict[int, StepFunction]:
    profiles: dict[int, StepFunction] = {}
    for b in result.bins():
        profile = StepFunction()
        for item in b.items:
            profile.add(item.interval, item.size)
        profiles[b.index] = profile
    return profiles


def _usage(profile: StepFunction) -> float:
    return profile.support_measure(tol=0.0)


def merge_bins(result: PackingResult, tol: float = DEFAULT_TOL) -> PackingResult:
    """Greedily merge bins while the total usage strictly decreases.

    Each round scans all bin pairs, merges the pair with the largest usage
    saving whose combined profile respects the capacity, and repeats until
    no saving remains.  ``O(rounds · m²)`` profile checks; ``m`` is the bin
    count, small in practice.

    Args:
        result: Any feasible packing (not modified).
        tol: Capacity tolerance for merge feasibility.

    Returns:
        A new :class:`~repro.core.PackingResult` with usage ≤ the input's,
        algorithm tagged ``"<orig>+merge"``.  Returns an equivalent copy
        when nothing merges.
    """
    profiles = _bin_profiles(result)
    assignment = dict(result.assignment)
    capacity = result.capacity
    improved = True
    while improved and len(profiles) > 1:
        improved = False
        best: tuple[float, int, int] | None = None
        indices = sorted(profiles)
        for i_pos, i in enumerate(indices):
            for j in indices[i_pos + 1 :]:
                combined = profiles[i] + profiles[j]
                saving = _usage(profiles[i]) + _usage(profiles[j]) - _usage(combined)
                if saving <= tol:
                    continue
                if combined.max_value() > capacity + tol:
                    continue
                if best is None or saving > best[0]:
                    best = (saving, i, j)
        if best is not None:
            _, i, j = best
            profiles[i] = profiles[i] + profiles[j]
            del profiles[j]
            for item_id, bin_index in assignment.items():
                if bin_index == j:
                    assignment[item_id] = i
            improved = True
    # Compact bin indices to the opening order of the survivors.
    remap = {old: new for new, old in enumerate(sorted(set(assignment.values())))}
    merged = PackingResult(
        result.items,
        {item_id: remap[b] for item_id, b in assignment.items()},
        algorithm=f"{result.algorithm}+merge",
        capacity=capacity,
        tol=result.tol,
    )
    merged.validate()
    return merged


@register_packer("dual-coloring-merged")
class DualColoringMergedPacker(OfflinePacker):
    """Dual Coloring followed by the bin-merge post-pass.

    Keeps Theorem 2's 4-approximation guarantee (merging only lowers usage)
    while recovering most of the stripe construction's average-case gap —
    the best-guarantee offline pipeline in the library.
    """

    name = "dual-coloring-merged"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def describe(self) -> str:
        return "dual-coloring-merged"

    def _assign(self, items):  # noqa: D102 - inherited contract
        from .dual_coloring import DualColoringPacker

        packing = DualColoringPacker(strict=self.strict).pack(items)
        return dict(merge_bins(packing).assignment)
