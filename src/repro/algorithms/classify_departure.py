"""Classify-by-departure-time First Fit (paper §5.2, Theorem 4).

Time is split into intervals of length ``ρ``; items departing within the same
interval form one category, and First Fit packs each category separately.
Items in one bin then depart at around the same time, so bins close promptly
instead of idling at low level.

Guarantees (Theorem 4): competitive ratio ≤ ρ/Δ + μΔ/ρ + 3 where Δ is the
minimum item duration; with Δ and μ known, choosing ρ = √μ·Δ yields 2√μ + 3.
"""

from __future__ import annotations

import math

from ..core.exceptions import ValidationError
from ..core.items import Item
from .base import register_packer
from .classified import ClassifiedFirstFit

__all__ = ["ClassifyByDepartureFirstFit"]


@register_packer("classify-departure")
class ClassifyByDepartureFirstFit(ClassifiedFirstFit):
    """Online First Fit over departure-time categories of width ``rho``.

    Args:
        rho: Category width ρ > 0.  Category ``k`` holds the items departing
            in ``(origin + (k-1)·ρ, origin + k·ρ]`` — the paper's convention
            with the first category being ``(0, ρ]``.
        origin: Reference time 0 of the classification.  ``None`` (default)
            pins the origin to the arrival time of the first item seen, which
            is an online-computable choice matching the paper's WLOG
            "first item arrives at time 0".
    """

    name = "classify-departure"

    def __init__(self, rho: float, origin: float | None = None) -> None:
        super().__init__()
        if rho <= 0:
            raise ValidationError(f"rho must be positive, got {rho}")
        self.rho = rho
        self._fixed_origin = origin
        self._origin: float | None = origin

    @classmethod
    def with_known_durations(
        cls, min_duration: float, mu: float, origin: float | None = None
    ) -> "ClassifyByDepartureFirstFit":
        """Instantiate with the Theorem 4 optimal parameter ρ = √μ·Δ."""
        if min_duration <= 0 or mu < 1:
            raise ValidationError(
                f"need min_duration > 0 and mu >= 1, got {min_duration}, {mu}"
            )
        return cls(rho=math.sqrt(mu) * min_duration, origin=origin)

    def describe(self) -> str:
        return f"classify-departure(rho={self.rho:g})"

    def reset(self) -> None:
        super().reset()
        self._origin = self._fixed_origin

    def category_of(self, item: Item) -> int:
        if self._origin is None:
            self._origin = item.arrival
        # Departure in (origin + (k-1)ρ, origin + kρ]  ⇒  k = ⌈(dep - origin)/ρ⌉.
        offset = item.departure - self._origin
        k = math.ceil(offset / self.rho)
        # Exact-boundary care: ceil of a float quotient can land one category
        # high when offset is an exact multiple of rho scaled through floats.
        if (k - 1) * self.rho >= offset:
            k -= 1
        return k
