"""Packing algorithms: the paper's contribution plus all baselines.

Offline (Clairvoyant MinUsageTime DBP, §4):

* :class:`DurationDescendingFirstFit` — 5-approximation (Theorem 1).
* :class:`DualColoringPacker` — 4-approximation (Theorem 2).

Online clairvoyant (§5):

* :class:`ClassifyByDepartureFirstFit` — ratio ρ/Δ + μΔ/ρ + 3 (Theorem 4).
* :class:`ClassifyByDurationFirstFit` — ratio α + ⌈log_α μ⌉ + 4 (Theorem 5).
* :class:`CombinedClassifyFirstFit` — the §5.4 future-work combination.

Non-clairvoyant baselines:

* :class:`FirstFitPacker` (μ+4 [24]), :class:`BestFitPacker` (unbounded),
  :class:`NextFitPacker` (2μ+1 [13]), :class:`WorstFitPacker`,
  :class:`LastFitPacker`, :class:`RandomFitPacker`,
  :class:`HybridFirstFitPacker` (Li et al. [17]).

Vector (``d``-dimensional, paper §6) — dimension-generic, with the numpy SoA
fit-check core behind the ``soa`` flag:

* :class:`VectorFirstFit`, :class:`VectorClassifyByDuration`,
  :class:`VectorClassifyByDeparture` — registered as ``vector-first-fit``,
  ``vector-classify-duration``, ``vector-classify-departure`` with
  any-dimensionality capability (``dims=None``); bit-identical to their
  scalar counterparts at ``d=1``.

Exact solvers: :func:`bin_packing_min_bins`, :func:`opt_total` (the repacking
adversary: sweep line + memoization + warm starts, see
:mod:`repro.algorithms.adversary`), :class:`AdversaryOracle` /
:func:`opt_total_incremental` (mutation-window re-evaluation),
:func:`optimal_packing` (tiny-instance true optimum).
"""

from .anyfit import (
    AnyFitPacker,
    BestFitPacker,
    FirstFitPacker,
    LastFitPacker,
    NextFitPacker,
    RandomFitPacker,
    WorstFitPacker,
)
from .base import (
    OfflinePacker,
    OnlinePacker,
    Packer,
    PackerInfo,
    ParamInfo,
    available_packers,
    get_packer,
    packer_info,
    register_packer,
)
from .classified import ClassifiedFirstFit
from .classify_departure import ClassifyByDepartureFirstFit
from .classify_duration import ClassifyByDurationFirstFit, duration_category
from .combined import CombinedClassifyFirstFit
from .dual_coloring import DemandChart, DualColoringPacker, Placement
from .duration_descending import DurationDescendingFirstFit
from .hybrid_first_fit import HybridFirstFitPacker
from .postopt import DualColoringMergedPacker, merge_bins
from .usage_aware import UsageAwareFitPacker
from .optimal import (
    SolverStats,
    bin_packing_min_bins,
    brute_force_min_usage,
    opt_total_scan,
    optimal_packing,
)
from .adversary import (
    AdversaryOracle,
    MemoCache,
    default_memo,
    opt_total,
    opt_total_incremental,
)
from .vector import (
    VectorBin,
    VectorClassifiedFirstFit,
    VectorClassifyByDeparture,
    VectorClassifyByDuration,
    VectorFirstFit,
    VectorItem,
    VectorPacking,
)

__all__ = [
    "AnyFitPacker",
    "BestFitPacker",
    "FirstFitPacker",
    "LastFitPacker",
    "NextFitPacker",
    "RandomFitPacker",
    "WorstFitPacker",
    "OfflinePacker",
    "OnlinePacker",
    "Packer",
    "PackerInfo",
    "ParamInfo",
    "available_packers",
    "get_packer",
    "packer_info",
    "register_packer",
    "ClassifiedFirstFit",
    "ClassifyByDepartureFirstFit",
    "ClassifyByDurationFirstFit",
    "duration_category",
    "CombinedClassifyFirstFit",
    "DemandChart",
    "DualColoringPacker",
    "Placement",
    "DurationDescendingFirstFit",
    "HybridFirstFitPacker",
    "UsageAwareFitPacker",
    "DualColoringMergedPacker",
    "merge_bins",
    "SolverStats",
    "bin_packing_min_bins",
    "brute_force_min_usage",
    "opt_total",
    "opt_total_scan",
    "optimal_packing",
    "AdversaryOracle",
    "MemoCache",
    "default_memo",
    "opt_total_incremental",
    "VectorBin",
    "VectorClassifiedFirstFit",
    "VectorClassifyByDeparture",
    "VectorClassifyByDuration",
    "VectorFirstFit",
    "VectorItem",
    "VectorPacking",
]
