"""Classify-by-duration First Fit (paper §5.3, Theorem 5).

Items are classified so that each category's max/min duration ratio is at
most a constant ``α``: given a base duration ``b``, category ``i`` holds the
items with duration in ``(b·α^{i-1}, b·α^i]``.  First Fit packs each category
separately; since First Fit is (μ+4)-competitive with usage bounded by
``(μ+3)·d(R) + span(R)`` [24], each category contributes ``(α+3)·d(R_i) +
span(R_i)``, giving a total ratio of ``α + ⌈log_α μ⌉ + 4``.

With Δ and μ known, set ``b = Δ`` and ``α = μ^{1/n}`` so exactly ``n``
categories arise, achieving ``min_{n≥1} μ^{1/n} + n + 3`` (Theorem 5).
"""

from __future__ import annotations

import math

from ..core.exceptions import ValidationError
from ..core.items import Item
from .base import register_packer
from .classified import ClassifiedFirstFit

__all__ = ["ClassifyByDurationFirstFit", "duration_category"]


def duration_category(duration: float, base: float, alpha: float) -> int:
    """Index ``i`` with ``duration ∈ (base·α^{i-1}, base·α^i]``.

    Durations equal to ``base`` get category 0's upper boundary, i.e. ``i=0``.
    Float-robust: the logarithm-based first guess is corrected against the
    exact predicate, so boundary durations never straddle two categories.
    """
    if duration <= 0:
        raise ValidationError(f"duration must be positive, got {duration}")
    ratio = duration / base
    i = math.ceil(math.log(ratio) / math.log(alpha)) if ratio > 1 else 0
    # Correct any off-by-one from float logs: want alpha^(i-1) < ratio <= alpha^i.
    while ratio > alpha**i:
        i += 1
    while i > 0 and ratio <= alpha ** (i - 1):
        i -= 1
    while ratio <= alpha ** (i - 1):  # durations below base ⇒ negative categories
        i -= 1
    return i


@register_packer("classify-duration")
class ClassifyByDurationFirstFit(ClassifiedFirstFit):
    """Online First Fit over geometric duration categories.

    Args:
        alpha: Max/min duration ratio per category, must exceed 1.
        base: Base duration ``b``.  ``None`` (default) uses the duration of
            the first item seen — an online-computable anchor; categories may
            then have negative indices, which is harmless.
    """

    name = "classify-duration"

    def __init__(self, alpha: float, base: float | None = None) -> None:
        super().__init__()
        if alpha <= 1:
            raise ValidationError(f"alpha must exceed 1, got {alpha}")
        self.alpha = alpha
        self._fixed_base = base
        self._base: float | None = base

    @classmethod
    def with_known_durations(
        cls, min_duration: float, mu: float, n: int | None = None
    ) -> "ClassifyByDurationFirstFit":
        """Instantiate with Theorem 5's optimal setting.

        Sets ``base = min_duration`` and ``α = μ^{1/n}``; when ``n`` is not
        given, the ``n ≥ 1`` minimising the bound ``μ^{1/n} + n + 3`` is used
        (computed numerically, as in the paper's §5.4).
        """
        if min_duration <= 0 or mu < 1:
            raise ValidationError(
                f"need min_duration > 0 and mu >= 1, got {min_duration}, {mu}"
            )
        if n is None:
            from ..bounds.competitive import optimal_num_duration_classes

            n = optimal_num_duration_classes(mu)
        if mu == 1.0:
            # One category suffices; any alpha > 1 classifies all items together.
            return cls(alpha=2.0, base=min_duration)
        return cls(alpha=mu ** (1.0 / n), base=min_duration)

    def describe(self) -> str:
        return f"classify-duration(alpha={self.alpha:g})"

    def reset(self) -> None:
        super().reset()
        self._base = self._fixed_base

    def category_of(self, item: Item) -> int:
        if self._base is None:
            self._base = item.duration
        return duration_category(item.duration, self._base, self.alpha)
