"""Combined classification strategy (the paper's §5.4 remark / §6 future work).

The paper observes that classify-by-departure-time wins for small μ and
classify-by-duration wins for large μ, and suggests combining them: *first*
classify items by duration (reducing the per-category max/min duration ratio
to α), *then* classify each duration category by departure time.  Within a
duration category ``i`` the durations lie in ``(b·α^{i-1}, b·α^i]``, i.e. the
category-local minimum duration is ``Δ_i ≈ b·α^{i-1}`` and the local μ is α,
so Theorem 4 suggests the per-category width ``ρ_i = √α · Δ_i``.

The paper leaves the combined algorithm's analysis as future work; this
implementation exists for the ablation bench (`bench_ablation_combined`),
which measures it empirically against both single strategies.
"""

from __future__ import annotations

import math

from ..core.exceptions import ValidationError
from ..core.items import Item
from .base import register_packer
from .classified import ClassifiedFirstFit
from .classify_duration import duration_category

__all__ = ["CombinedClassifyFirstFit"]


@register_packer("classify-combined")
class CombinedClassifyFirstFit(ClassifiedFirstFit):
    """Duration-then-departure classified First Fit.

    Args:
        alpha: Duration ratio per duration category (> 1).
        base: Base duration ``b`` (``None`` ⇒ first item's duration).
        rho_scale: The per-category departure width is
            ``rho_scale · √α · b·α^{i-1}``; 1.0 matches the Theorem 4 optimum
            applied category-locally.
        origin: Classification time origin (``None`` ⇒ first arrival).
    """

    name = "classify-combined"

    def __init__(
        self,
        alpha: float,
        base: float | None = None,
        rho_scale: float = 1.0,
        origin: float | None = None,
    ) -> None:
        super().__init__()
        if alpha <= 1:
            raise ValidationError(f"alpha must exceed 1, got {alpha}")
        if rho_scale <= 0:
            raise ValidationError(f"rho_scale must be positive, got {rho_scale}")
        self.alpha = alpha
        self.rho_scale = rho_scale
        self._fixed_base = base
        self._fixed_origin = origin
        self._base: float | None = base
        self._origin: float | None = origin

    @classmethod
    def with_known_durations(
        cls, min_duration: float, mu: float, n: int | None = None
    ) -> "CombinedClassifyFirstFit":
        """Anchor ``base`` at Δ and pick α = μ^{1/n} like Theorem 5."""
        if min_duration <= 0 or mu < 1:
            raise ValidationError(
                f"need min_duration > 0 and mu >= 1, got {min_duration}, {mu}"
            )
        if n is None:
            from ..bounds.competitive import optimal_num_duration_classes

            n = optimal_num_duration_classes(mu)
        alpha = 2.0 if mu == 1.0 else mu ** (1.0 / n)
        return cls(alpha=alpha, base=min_duration)

    def describe(self) -> str:
        return f"classify-combined(alpha={self.alpha:g}, rho_scale={self.rho_scale:g})"

    def reset(self) -> None:
        super().reset()
        self._base = self._fixed_base
        self._origin = self._fixed_origin

    def category_of(self, item: Item) -> tuple[int, int]:
        if self._base is None:
            self._base = item.duration
        if self._origin is None:
            self._origin = item.arrival
        i = duration_category(item.duration, self._base, self.alpha)
        # Category-local minimum duration and the Theorem-4-style width.
        delta_i = self._base * self.alpha ** (i - 1)
        rho_i = self.rho_scale * math.sqrt(self.alpha) * delta_i
        offset = item.departure - self._origin
        k = math.ceil(offset / rho_i)
        if (k - 1) * rho_i >= offset:
            k -= 1
        return (i, k)
