"""The incremental repacking adversary: sweep line, memoization, warm starts.

Every empirical ratio in this repository divides by the paper's §3.2
adversary ``OPT_total(R) = ∫ OPT(R, t) dt``.  This module is the production
pipeline for that integral, built from three layers:

* :func:`opt_total` — an event-sorted **sweep line** over the elementary
  intervals (via :func:`repro.core.events.active_size_slices`) that maintains
  the active size multiset incrementally instead of rescanning all items per
  interval, **warm-starts** each slice's branch-and-bound with the previous
  slice's optimum plus its arrivals, and answers repeated multisets from a
  :class:`MemoCache`.
* :class:`MemoCache` — a thread-safe, optionally disk-backed map from the
  canonical hash of a size multiset to its exact bin count, shared across
  ``opt_total`` calls (and, through a file, across sweep worker processes
  and repeated benchmark runs).
* :class:`AdversaryOracle` — a stateful evaluator that remembers the slice
  decomposition of the last instance it solved; when the next instance
  differs only by item mutations, it recomputes **only the slices
  intersecting the mutated time windows** and splices the rest — the fast
  path behind :func:`repro.bounds.find_bad_instance`'s hill climb.

All three return values bit-identical to the reference
:func:`repro.algorithms.optimal.opt_total_scan`: the slice boundaries, the
per-slice exact optima and the left-to-right summation order are the same,
so the floating-point result is exactly equal, not merely approximately.
Observability flows through :class:`~repro.algorithms.optimal.SolverStats`.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import struct
import threading
import time

try:  # POSIX advisory file locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
from bisect import bisect_left, bisect_right, insort
from pathlib import Path
from typing import Sequence

from typing import TYPE_CHECKING

from ..core.events import EventArrays, SizeSlice, active_size_slices
from ..core.exceptions import ValidationError
from ..core.items import ItemList
from ..core.stepfun import DEFAULT_TOL
from ..obs import TelemetryRegistry, enabled as _telemetry_enabled
from .optimal import SolverStats, bin_packing_min_bins

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.deadline import Deadline

__all__ = [
    "MemoCache",
    "AdversaryOracle",
    "opt_total",
    "opt_total_incremental",
    "default_memo",
]


# ---------------------------------------------------------------------------
# Shared memoization of slice optima
# ---------------------------------------------------------------------------


class MemoCache:
    """Canonical multiset hash → exact bin count, shared across solves.

    Keys are 16-byte BLAKE2b digests of the packed ``(tol, sorted sizes)``
    vector, so identical slices hash identically regardless of which
    instance produced them, and the cache stays compact even for thousands
    of large slices.  All operations take an internal lock (thread-safe);
    persistence is **merge-on-save** with an atomic ``os.replace`` under a
    POSIX advisory lock on a ``<path>.lock`` sidecar, so any number of
    concurrent sweep worker processes pointed at the same path serialise
    their read-merge-write cycles: the file ends up holding the **union**
    of every saver's entries.  (Where ``fcntl`` is unavailable the save is
    still atomic but best-effort — a simultaneous save may lose some of
    another worker's freshly added entries.)

    A cached count is the *exact* optimum of its multiset, independent of
    the node budget it was solved under; a hit can therefore only turn a
    would-be :class:`~repro.core.SolverLimitError` into an exact answer,
    never change a value.

    Args:
        path: Optional file backing the cache; loaded eagerly when it
            exists, written by :meth:`save`.
        max_entries: Soft capacity; the oldest entries are evicted first.
        registry: Optional :class:`~repro.obs.TelemetryRegistry` the cache
            records its persistence telemetry in (``memo.load_entries``,
            ``memo.saves``, ``memo.entries_merged``, ``memo.file_bytes``,
            ``memo.save_retries``); ``None`` records nothing.
    """

    #: Transient-OSError attempts made by :meth:`save` before giving up.
    _SAVE_ATTEMPTS = 3

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        *,
        max_entries: int = 1_000_000,
        registry: TelemetryRegistry | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._data: dict[bytes, int] = {}
        self.max_entries = max_entries
        self.registry = registry
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.load()

    @staticmethod
    def key(sizes: Sequence[float], tol: float) -> bytes:
        """The canonical cache key of a sorted size multiset at ``tol``."""
        packed = struct.pack(f"<{len(sizes) + 1}d", tol, *sizes)
        return hashlib.blake2b(packed, digest_size=16).digest()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: bytes) -> int | None:
        """The cached bin count for ``key``, or ``None``."""
        with self._lock:
            return self._data.get(key)

    def put(self, key: bytes, count: int) -> None:
        """Record the exact bin count of a multiset."""
        with self._lock:
            if key not in self._data and len(self._data) >= self.max_entries:
                del self._data[next(iter(self._data))]
            self._data[key] = count

    def clear(self) -> None:
        """Drop every in-memory entry (the backing file is untouched)."""
        with self._lock:
            self._data.clear()

    def load(self) -> int:
        """Merge entries from the backing file; returns how many were read.

        A missing, empty or unreadable file is treated as an empty cache —
        persistence is an optimisation, never a correctness dependency.
        """
        if self.path is None or not self.path.exists():
            return 0
        try:
            raw = self.path.read_bytes()
            data = pickle.loads(raw) if raw else {}
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return 0
        if not isinstance(data, dict):
            return 0
        with self._lock:
            for k, v in data.items():
                self._data.setdefault(k, v)
        if self.registry is not None:
            self.registry.counter("memo.load_entries").inc(len(data))
        return len(data)

    def merge_from(self, other: "MemoCache") -> int:
        """Fold another cache's in-memory entries into this one.

        Existing entries win (cached optima for the same key are equal by
        construction, so which copy survives is immaterial).  Returns the
        number of newly adopted entries.  This is the driver-side half of
        the sharded-sweep memo story: per-shard caches are merged into one
        and persisted through :meth:`save`'s atomic merge path.
        """
        with other._lock:
            entries = dict(other._data)
        adopted = 0
        with self._lock:
            for key, count in entries.items():
                if key not in self._data:
                    if len(self._data) >= self.max_entries:
                        del self._data[next(iter(self._data))]
                    self._data[key] = count
                    adopted += 1
        return adopted

    @contextlib.contextmanager
    def _save_lock(self):
        """Advisory exclusive lock on the sidecar ``<path>.lock`` file.

        Serialises concurrent read-merge-write save cycles on POSIX so no
        saver's entries are lost; a no-op where ``fcntl`` is unavailable.
        """
        if fcntl is None or self.path is None:
            yield
            return
        lock_path = self.path.with_name(f"{self.path.name}.lock")
        with open(lock_path, "a+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def save(self) -> int:
        """Merge this cache into the backing file atomically.

        The read-merge-write cycle runs under :meth:`_save_lock`, so
        concurrent savers append to — never overwrite — each other: on-disk
        entries from other processes are preserved, the merged dict is
        written to a temp file and ``os.replace``d into place (retried a
        few times on transient ``OSError``).  Returns the number of entries
        written (0 without a path).
        """
        if self.path is None:
            return 0
        with self._save_lock():
            merged: dict[bytes, int] = {}
            try:
                raw = self.path.read_bytes()
                on_disk = pickle.loads(raw) if raw else {}
                if isinstance(on_disk, dict):
                    merged.update(on_disk)
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                pass
            with self._lock:
                merged.update(self._data)
            payload = pickle.dumps(merged, protocol=pickle.HIGHEST_PROTOCOL)
            tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
            retries = 0
            for attempt in range(self._SAVE_ATTEMPTS):
                try:
                    tmp.write_bytes(payload)
                    os.replace(tmp, self.path)
                    break
                except OSError:
                    retries += 1
                    if attempt == self._SAVE_ATTEMPTS - 1:
                        if self.registry is not None:
                            self.registry.counter("memo.save_retries").inc(retries)
                        raise
        if self.registry is not None:
            self.registry.counter("memo.saves").inc()
            self.registry.counter("memo.entries_merged").inc(len(merged))
            self.registry.gauge("memo.file_bytes").set(len(payload))
            if retries:
                self.registry.counter("memo.save_retries").inc(retries)
        return len(merged)


#: Process-wide default cache used when ``opt_total`` is not handed one.
_DEFAULT_MEMO = MemoCache()


def default_memo() -> MemoCache:
    """The process-wide :class:`MemoCache` behind ``opt_total(memo=None)``."""
    return _DEFAULT_MEMO


# ---------------------------------------------------------------------------
# The sweep-line adversary
# ---------------------------------------------------------------------------


def _slice_count(
    sizes: tuple[float, ...],
    warm_upper: int,
    *,
    tol: float,
    max_nodes: int,
    memo: MemoCache,
    stats: SolverStats | None,
    deadline: "Deadline | None" = None,
) -> int:
    """Exact bin count of one slice: memo lookup, else warm-started B&B."""
    key = MemoCache.key(sizes, tol)
    cached = memo.get(key)
    if cached is not None:
        if stats is not None:
            stats.memo_hits += 1
        return cached
    if stats is not None:
        stats.memo_misses += 1
        if _telemetry_enabled():
            t0 = time.perf_counter()
            count = bin_packing_min_bins(
                sizes,
                tol=tol,
                max_nodes=max_nodes,
                upper_bound=warm_upper,
                stats=stats,
                deadline=deadline,
            )
            stats.solve_latency.observe(time.perf_counter() - t0)
            memo.put(key, count)
            return count
    count = bin_packing_min_bins(
        sizes,
        tol=tol,
        max_nodes=max_nodes,
        upper_bound=warm_upper,
        stats=stats,
        deadline=deadline,
    )
    memo.put(key, count)
    return count


def _added_count(prev: tuple[float, ...], cur: tuple[float, ...]) -> int:
    """``|cur \\ prev|`` as multisets of sorted floats (two-pointer walk)."""
    i = j = common = 0
    while i < len(prev) and j < len(cur):
        if prev[i] == cur[j]:
            common += 1
            i += 1
            j += 1
        elif prev[i] < cur[j]:
            i += 1
        else:
            j += 1
    return len(cur) - common


def opt_total(
    items: ItemList,
    *,
    tol: float = DEFAULT_TOL,
    max_nodes: int = 2_000_000,
    memo: MemoCache | None = None,
    stats: SolverStats | None = None,
    deadline: "Deadline | None" = None,
    slice_engine: str | None = None,
) -> float:
    """Exact ``OPT_total(R) = ∫ OPT(R, t) dt`` (paper §3.2), fast.

    An event-sorted sweep maintains the active size multiset in O(log n) per
    event; each elementary interval's classical bin packing instance is
    answered from ``memo`` when its multiset has been seen before (by any
    prior call sharing the cache) and otherwise solved by branch and bound
    warm-started with the previous slice's optimum plus its arrival count —
    a valid upper bound, since removing departures cannot increase the
    optimum and each arrival fits in a fresh bin.

    Values are bit-identical to the reference
    :func:`~repro.algorithms.optimal.opt_total_scan`.

    Args:
        items: The instance ``R``.
        tol: Capacity tolerance (part of the memo key).
        max_nodes: Per-slice branch-and-bound node budget.
        memo: Cache to consult and fill; ``None`` uses the process-wide
            :func:`default_memo`.
        stats: Optional :class:`~repro.algorithms.optimal.SolverStats`
            incremented in place.
        deadline: Optional wall-clock :class:`~repro.resilience.Deadline`
            bounding the **whole** integral — one budget shared by every
            slice's branch and bound, checked between slices and inside
            each solve.
        slice_engine: Sweep engine forwarded to
            :func:`~repro.core.events.active_size_slices` — ``None`` /
            ``"columnar"`` (presorted arrays, the default) or ``"object"``
            (the original per-object sweep).  Both engines yield identical
            slices, so the integral is the same either way; the knob exists
            for parity testing and benchmarking.

    Raises:
        SolverLimitError: propagated from :func:`bin_packing_min_bins` if an
            uncached slice exceeds the node budget.
        DeadlineExceeded: if ``deadline`` expires before the sweep finishes.
    """
    if not items:
        return 0.0
    memo = _DEFAULT_MEMO if memo is None else memo
    total = 0.0
    prev_count = 0
    for sl in active_size_slices(items, engine=slice_engine):
        if stats is not None:
            stats.slices += 1
        if deadline is not None:
            deadline.check("opt_total sweep")
        if not sl.sizes:
            prev_count = 0
            continue
        count = _slice_count(
            sl.sizes,
            prev_count + sl.added,
            tol=tol,
            max_nodes=max_nodes,
            memo=memo,
            stats=stats,
            deadline=deadline,
        )
        total += count * (sl.right - sl.left)
        prev_count = count
    if stats is not None:
        stats.full_evals += 1
    return total


# ---------------------------------------------------------------------------
# Incremental re-evaluation under item mutations
# ---------------------------------------------------------------------------


def _merge_windows(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    windows.sort()
    merged: list[tuple[float, float]] = []
    for lo, hi in windows:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class AdversaryOracle:
    """A stateful ``OPT_total`` evaluator with an incremental mutation path.

    The oracle remembers the slice decomposition (boundaries, multisets,
    exact per-slice optima) of the last instance it evaluated.  When the
    next instance covers the same item ids and differs only in some items'
    sizes or intervals — exactly what one hill-climb mutation produces —
    it recomputes only the slices intersecting the mutated items' old/new
    time windows; every other slice's multiset and count are spliced from
    the previous evaluation without rescanning a single item.  The final
    integral is re-summed left to right over all slices, so the result is
    bit-identical to a from-scratch :func:`opt_total` of the new instance.

    The memo cache and stats are shared across evaluations (and may be
    shared wider by passing them in), so repeated slices pay for their
    branch and bound exactly once per oracle/cache lifetime.

    Args:
        tol: Capacity tolerance.
        max_nodes: Per-slice branch-and-bound node budget.
        memo: Shared :class:`MemoCache`; a private one is created if omitted
            (note: *not* the process-wide default, so oracle memory is
            bounded by its own lifetime).
        stats: Shared :class:`~repro.algorithms.optimal.SolverStats`; a
            private one is created if omitted (read it via ``.stats``).
    """

    __slots__ = (
        "tol",
        "max_nodes",
        "memo",
        "stats",
        "_items",
        "_slices",
        "_counts",
        "_events",
    )

    #: An evaluation falls back to a full sweep when more than this fraction
    #: of the items changed (windows would cover most of the timeline).
    _INCREMENTAL_FRACTION = 0.25

    def __init__(
        self,
        *,
        tol: float = DEFAULT_TOL,
        max_nodes: int = 2_000_000,
        memo: MemoCache | None = None,
        stats: SolverStats | None = None,
    ) -> None:
        self.tol = tol
        self.max_nodes = max_nodes
        self.memo = memo if memo is not None else MemoCache()
        self.stats = stats if stats is not None else SolverStats()
        self._items: ItemList | None = None
        self._slices: list[SizeSlice] | None = None
        self._counts: list[int] | None = None
        self._events: EventArrays | None = None

    def reset(self) -> None:
        """Forget the remembered baseline (the memo cache is kept)."""
        self._items = self._slices = self._counts = self._events = None

    def opt_total(self, items: ItemList) -> float:
        """Exact ``OPT_total(items)``, incrementally when possible.

        Raises:
            SolverLimitError: if an uncached slice exceeds the node budget;
                the remembered baseline is left unchanged in that case.
        """
        if not items:
            return 0.0
        slices: list[SizeSlice] | None = None
        counts: list[int] | None = None
        events: EventArrays | None = None
        if self._items is not None:
            changed = self._items.changed_ids(items)
            if changed is not None:
                if not changed:
                    slices, counts, events = self._slices, self._counts, self._events
                elif len(changed) <= max(2, int(len(items) * self._INCREMENTAL_FRACTION)):
                    slices, counts, events = self._incremental(items, changed)
        if slices is None or counts is None:
            slices, counts, events = self._full(items)
        total = 0.0
        for sl, count in zip(slices, counts):
            if sl.sizes:
                total += count * (sl.right - sl.left)
        self._items, self._slices, self._counts = items, slices, counts
        self._events = events
        return total

    # -- evaluation paths ---------------------------------------------------

    def _count(self, sizes: tuple[float, ...], warm_upper: int) -> int:
        return _slice_count(
            sizes,
            warm_upper,
            tol=self.tol,
            max_nodes=self.max_nodes,
            memo=self.memo,
            stats=self.stats,
        )

    def _full(
        self, items: ItemList
    ) -> tuple[list[SizeSlice], list[int], EventArrays]:
        events = EventArrays.from_items(items)
        slices: list[SizeSlice] = []
        counts: list[int] = []
        prev_count = 0
        for sl in events.slices():
            self.stats.slices += 1
            count = self._count(sl.sizes, prev_count + sl.added) if sl.sizes else 0
            slices.append(sl)
            counts.append(count)
            prev_count = count
        self.stats.full_evals += 1
        return slices, counts, events

    def _incremental(
        self, items: ItemList, changed: list[int]
    ) -> tuple[list[SizeSlice], list[int], EventArrays]:
        assert self._items is not None and self._slices is not None
        assert self._counts is not None
        old_items, old_slices, old_counts = self._items, self._slices, self._counts
        old_changed = [old_items.by_id(i) for i in changed]
        new_changed = [items.by_id(i) for i in changed]
        raw_windows: list[tuple[float, float]] = []
        for o, n in zip(old_changed, new_changed):
            if o.size == n.size:
                # Same size: only the symmetric difference of the two
                # intervals changes the multiset — the overlap keeps the
                # item as-is.  The two boundary-shift windows cover it
                # (and cover both intervals when they are disjoint).
                if o.arrival != n.arrival:
                    raw_windows.append(
                        (min(o.arrival, n.arrival), max(o.arrival, n.arrival))
                    )
                if o.departure != n.departure:
                    raw_windows.append(
                        (min(o.departure, n.departure), max(o.departure, n.departure))
                    )
            else:
                raw_windows.append(
                    (min(o.arrival, n.arrival), max(o.departure, n.departure))
                )
        windows = _merge_windows(raw_windows)
        window_los = [w[0] for w in windows]
        old_lefts = [sl.left for sl in old_slices]

        def old_state_at(t: float) -> tuple[tuple[float, ...], int]:
            """Old multiset and count at time ``t`` (empty outside coverage)."""
            idx = bisect_right(old_lefts, t) - 1
            if 0 <= idx and t < old_slices[idx].right:
                return old_slices[idx].sizes, old_counts[idx]
            return (), 0

        def in_window(left: float, right: float) -> bool:
            # Windows are merged (disjoint, sorted), so the last window
            # starting strictly before `right` is the only candidate for an
            # overlap with the half-open slice [left, right).
            k = bisect_left(window_los, right) - 1
            return k >= 0 and left < windows[k][1]

        # Presort reuse: splice the mutated items' event times into the
        # baseline's sorted timeline instead of re-sorting all 2n events per
        # mutation.  The resulting boundaries are bit-identical to
        # ``items.event_times()`` (same floats, same order).
        events: EventArrays | None = None
        if self._events is not None:
            try:
                events = self._events.retimed(old_changed, new_changed)
            except ValidationError:
                events = None  # baseline timeline mismatch: rebuild below
        if events is None:
            events = EventArrays.from_items(items)
        times = events.times
        slices: list[SizeSlice] = []
        counts: list[int] = []
        prev_sizes: tuple[float, ...] = ()
        prev_count = 0
        for left, right in zip(times[:-1], times[1:]):
            self.stats.slices += 1
            if not in_window(left, right):
                sizes, count = old_state_at(left)
                self.stats.slices_reused += 1
            else:
                base, _ = old_state_at(left)
                active = list(base)
                for item in old_changed:
                    if item.active_at(left):
                        del active[bisect_left(active, item.size)]
                for item in new_changed:
                    if item.active_at(left):
                        insort(active, item.size)
                sizes = tuple(active)
                count = (
                    self._count(sizes, prev_count + _added_count(prev_sizes, sizes))
                    if sizes
                    else 0
                )
            slices.append(SizeSlice(left, right, sizes, 0))
            counts.append(count)
            prev_sizes, prev_count = sizes, count
        self.stats.incremental_evals += 1
        return slices, counts, events


def opt_total_incremental(
    base_items: ItemList,
    items: ItemList,
    *,
    tol: float = DEFAULT_TOL,
    max_nodes: int = 2_000_000,
    memo: MemoCache | None = None,
    stats: SolverStats | None = None,
) -> float:
    """``OPT_total(items)`` via the incremental path anchored at ``base_items``.

    Convenience wrapper over :class:`AdversaryOracle` for one-shot use: the
    oracle evaluates the baseline, then re-evaluates the mutated instance
    touching only the slices the mutation can affect.  Bit-identical to
    ``opt_total(items)``.  For repeated mutations keep an oracle instead.
    """
    oracle = AdversaryOracle(tol=tol, max_nodes=max_nodes, memo=memo, stats=stats)
    oracle.opt_total(base_items)
    return oracle.opt_total(items)
