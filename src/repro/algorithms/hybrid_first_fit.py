"""Hybrid First Fit — the size-classified baseline of Li et al. [17, 19].

Li et al. improved on plain First Fit in the non-clairvoyant setting by
*classifying and packing items based on their sizes*: large items (size above
a threshold) are segregated from small ones, and the small range is split
into geometric size classes, each packed by First Fit separately.  They
proved ratios of μ+5 (μ known) and (8/7)μ + 55/7 (μ unknown).

Reproduction note: the SPAA'16 paper cites but does not restate the exact
class boundaries; we implement the standard harmonic-style variant — classes
``(1/2, 1]``, ``(1/3, 1/2]``, …, ``(1/(K), 1/(K-1)]`` and a final catch-all
``(0, 1/K]`` — which matches the description "classifies and packs items
based on their sizes" and reproduces the qualitative behaviour (tighter bins,
fewer long-lived low-level bins).  ``K`` defaults to 4 as in Li et al.'s
experimental configuration of size classes.
"""

from __future__ import annotations

from ..core.exceptions import ValidationError
from ..core.items import Item
from .base import register_packer
from .classified import ClassifiedFirstFit

__all__ = ["HybridFirstFitPacker"]


@register_packer("hybrid-first-fit")
class HybridFirstFitPacker(ClassifiedFirstFit):
    """First Fit within harmonic size classes.

    Args:
        num_classes: Number of size classes ``K ≥ 1``.  Class ``k`` for
            ``k < K`` holds sizes in ``(1/(k+1), 1/k]``; class ``K`` holds
            sizes in ``(0, 1/K]``.  ``K = 1`` degenerates to plain First Fit.
    """

    name = "hybrid-first-fit"

    def __init__(self, num_classes: int = 4) -> None:
        super().__init__()
        if num_classes < 1:
            raise ValidationError(f"num_classes must be >= 1, got {num_classes}")
        self.num_classes = num_classes

    def describe(self) -> str:
        return f"hybrid-first-fit(K={self.num_classes})"

    def category_of(self, item: Item) -> int:
        # Smallest k with size > 1/(k+1)  ⇔  k = floor(1/size) unless exact.
        for k in range(1, self.num_classes):
            if item.size > 1.0 / (k + 1):
                return k
        return self.num_classes
