"""Dual Coloring — offline 4-approximation (paper §4.2, Theorem 2).

The algorithm splits items into a *large* group (size > 1/2) and a *small*
group (size ≤ 1/2).  Large items are packed by plain (arrival-order) First
Fit — any feasible packing works for the analysis, since no two concurrent
large items can share a bin.  Small items go through two phases:

* **Phase 1 — item placement in the demand chart.**  The demand chart's
  height at time ``t`` is the total size ``S_S(t)`` of active small items.
  Altitudes are examined from high to low; at each altitude the horizontal
  line decomposes into red / blue / uncolored maximal intervals, and items
  are placed (colored red) into uncolored intervals under the paper's
  eligibility rule, or the area below is colored blue.  The paper proves
  (Lemmas 2–5) that afterwards every small item is placed inside the chart
  and no three placed items overlap.

* **Phase 2 — stripe packing.**  The chart is cut into horizontal stripes of
  height 1/2.  Items lying within stripe ``k`` share one bin; items crossing
  the boundary ``k/2`` share another.  Lemma 5 plus size ≤ 1/2 makes both
  kinds of bins feasible.

The altitude bookkeeping of Phase 1 relies on *exact* equality of sums and
differences of item sizes, so this module converts all sizes and times to
:class:`fractions.Fraction` (exact for every float) and computes exactly,
converting back only when emitting the assignment.

Guarantee (Theorem 2): at any time the number of open bins is at most
``4·⌈S(t)⌉``, hence total usage ≤ 4·OPT_total(R).  Both facts are asserted by
the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from heapq import heappop, heappush
from typing import Iterable, Sequence

from ..core.exceptions import ReproError
from ..core.items import Item, ItemList
from .base import OfflinePacker, register_packer

__all__ = ["DualColoringPacker", "DemandChart", "Placement"]

FPair = tuple[Fraction, Fraction]  # half-open interval [left, right)


def _fceil(x: Fraction) -> int:
    """Exact ceiling of a Fraction."""
    return -((-x.numerator) // x.denominator)


# ---------------------------------------------------------------------------
# Exact interval-list helpers (sorted, disjoint, half-open Fraction intervals)
# ---------------------------------------------------------------------------


def _normalize(intervals: Iterable[FPair], presorted: bool = False) -> list[FPair]:
    """Sort and merge touching/overlapping intervals.

    ``presorted=True`` skips the sort — Fraction comparisons dominate the
    algorithm's profile, and most callers already hold sorted lists.
    """
    if presorted:
        ivs = [iv for iv in intervals if iv[1] > iv[0]]
    else:
        ivs = sorted(iv for iv in intervals if iv[1] > iv[0])
    out: list[FPair] = []
    for left, right in ivs:
        if out and left <= out[-1][1]:
            if right > out[-1][1]:
                out[-1] = (out[-1][0], right)
        else:
            out.append((left, right))
    return out


def _merge_sorted(a: Sequence[FPair], b: Sequence[FPair]) -> list[FPair]:
    """Union of two *sorted, disjoint* interval lists (linear merge)."""
    out: list[FPair] = []
    i = j = 0
    while i < len(a) or j < len(b):
        if j >= len(b) or (i < len(a) and a[i][0] <= b[j][0]):
            nxt = a[i]
            i += 1
        else:
            nxt = b[j]
            j += 1
        if out and nxt[0] <= out[-1][1]:
            if nxt[1] > out[-1][1]:
                out[-1] = (out[-1][0], nxt[1])
        else:
            out.append(nxt)
    return out


def _subtract(base: Sequence[FPair], holes: Sequence[FPair]) -> list[FPair]:
    """Set difference ``base \\ holes``; both lists must be normalized."""
    out: list[FPair] = []
    for left, right in base:
        cur = left
        for h_left, h_right in holes:
            if h_right <= cur:
                continue
            if h_left >= right:
                break
            if h_left > cur:
                out.append((cur, h_left))
            cur = max(cur, h_right)
            if cur >= right:
                break
        if cur < right:
            out.append((cur, right))
    return out


def _intersects(a: FPair, b: FPair) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _intersection(a: FPair, b: FPair) -> FPair | None:
    left = max(a[0], b[0])
    right = min(a[1], b[1])
    return (left, right) if right > left else None


# ---------------------------------------------------------------------------
# Demand chart
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _FracItem:
    """A small item with exact coordinates."""

    id: int
    size: Fraction
    left: Fraction
    right: Fraction

    @property
    def interval(self) -> FPair:
        return (self.left, self.right)


#: Guard band for float-first comparisons of exact quantities.  All compared
#: values are sums of at most a few thousand unit-bounded sizes, so their
#: float images err by ≪ 1e-10; differences beyond the band are decided by
#: the floats, ties fall back to exact Fraction comparison.
_FLOAT_GUARD = 1e-9


class DemandChart:
    """Exact piecewise-constant height profile ``S_S(t)`` of the small items."""

    def __init__(self, items: Sequence[_FracItem]) -> None:
        deltas: dict[Fraction, Fraction] = {}
        for it in items:
            deltas[it.left] = deltas.get(it.left, Fraction(0)) + it.size
            deltas[it.right] = deltas.get(it.right, Fraction(0)) - it.size
        times = sorted(deltas)
        #: (left, right, height) segments, heights exact; zero-height segments kept.
        self.segments: list[tuple[Fraction, Fraction, Fraction]] = []
        level = Fraction(0)
        for i, t in enumerate(times[:-1]):
            level += deltas[t]
            self.segments.append((t, times[i + 1], level))
        #: Float images of segment heights for the comparison fast path.
        self._heights_float: list[float] = [float(h) for _, _, h in self.segments]

    def heights(self) -> set[Fraction]:
        """All distinct positive heights (the initial altitude set ``M``)."""
        return {h for _, _, h in self.segments if h > 0}

    def max_height(self) -> Fraction:
        """``max_t S_S(t)``."""
        if not self.segments:
            return Fraction(0)
        return max(h for _, _, h in self.segments)

    def line_at(self, altitude: Fraction) -> list[FPair]:
        """Maximal time intervals where the chart reaches ``altitude``.

        A point ``(t, altitude)`` lies in the chart iff ``S_S(t) >= altitude``
        (the chart occupies altitudes ``(0, S_S(t)]``).
        """
        alt_f = float(altitude)
        selected = []
        for (left, right, h), h_f in zip(self.segments, self._heights_float):
            if h_f >= alt_f + _FLOAT_GUARD:
                selected.append((left, right))
            elif h_f > alt_f - _FLOAT_GUARD and h >= altitude:  # exact tie-break
                selected.append((left, right))
        return _normalize(selected, presorted=True)  # segments are in time order

    def height_covers(self, interval: FPair, altitude: Fraction) -> bool:
        """True iff ``S_S(t) >= altitude`` for all ``t`` in ``interval``."""
        remaining = _subtract([interval], self.line_at(altitude))
        return not remaining


# ---------------------------------------------------------------------------
# Phase 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Placement:
    """Where Phase 1 placed an item: rectangle ``interval × (altitude-size, altitude]``."""

    item_id: int
    altitude: Fraction
    size: Fraction
    interval: FPair

    @property
    def alt_low(self) -> Fraction:
        return self.altitude - self.size

    @property
    def alt_high(self) -> Fraction:
        return self.altitude


class _Rect:
    """A colored rectangle: time × altitude range ``(alt_low, alt_high]``."""

    __slots__ = ("t_left", "t_right", "alt_low", "alt_high", "_low_f", "_high_f")

    def __init__(
        self, t_left: Fraction, t_right: Fraction, alt_low: Fraction, alt_high: Fraction
    ) -> None:
        self.t_left = t_left
        self.t_right = t_right
        self.alt_low = alt_low
        self.alt_high = alt_high
        self._low_f = float(alt_low)
        self._high_f = float(alt_high)

    def covers_altitude(self, h: Fraction, h_f: float) -> bool:
        """``alt_low < h <= alt_high`` with a float fast path."""
        if h_f <= self._low_f - _FLOAT_GUARD or h_f > self._high_f + _FLOAT_GUARD:
            return False
        if self._low_f + _FLOAT_GUARD < h_f <= self._high_f - _FLOAT_GUARD:
            return True
        return self.alt_low < h <= self.alt_high


class _Phase1:
    """Runs the demand-chart coloring and records item placements."""

    def __init__(self, items: Sequence[_FracItem], chart: DemandChart) -> None:
        self.chart = chart
        self.unplaced: dict[int, _FracItem] = {it.id: it for it in items}
        self.placements: dict[int, Placement] = {}
        # Kept sorted by (t_left, t_right) so per-altitude coverage queries
        # need a linear merge instead of a Fraction-comparison sort.
        self.red: list[_Rect] = []
        self.blue: list[_Rect] = []

    def run(self) -> None:
        # Max-heap of altitudes via negation; dedupe with a companion set.
        heap: list[Fraction] = []
        seen: set[Fraction] = set()
        for h in self.chart.heights():
            heappush(heap, -h)
            seen.add(h)
        while heap:
            h = -heappop(heap)
            for new_alt in self._examine(h):
                if new_alt > 0 and new_alt not in seen:
                    seen.add(new_alt)
                    heappush(heap, -new_alt)
        if self.unplaced:  # Lemma 4 says this cannot happen
            raise ReproError(
                f"Dual Coloring Phase 1 left {len(self.unplaced)} small items "
                f"unplaced: {sorted(self.unplaced)[:5]} — invariant violation"
            )

    def _colored_at(self, rects: Sequence[_Rect], h: Fraction) -> list[FPair]:
        # ``rects`` is kept sorted by t_left, so filtering preserves order.
        h_f = float(h)
        return _normalize(
            ((r.t_left, r.t_right) for r in rects if r.covers_altitude(h, h_f)),
            presorted=True,
        )

    @staticmethod
    def _insert_sorted(rects: list[_Rect], rect: _Rect) -> None:
        lo, hi = 0, len(rects)
        key = (rect.t_left, rect.t_right)
        while lo < hi:
            mid = (lo + hi) // 2
            if (rects[mid].t_left, rects[mid].t_right) < key:
                lo = mid + 1
            else:
                hi = mid
        rects.insert(lo, rect)

    def _examine(self, h: Fraction) -> list[Fraction]:
        """Process altitude ``h``; return new altitudes to enqueue."""
        line = self.chart.line_at(h)
        red_ints = self._colored_at(self.red, h)
        blue_ints = self._colored_at(self.blue, h)
        uncolored = _subtract(line, _merge_sorted(red_ints, blue_ints))
        new_altitudes: list[Fraction] = []
        while uncolored:
            i_u = uncolored[0]  # leftmost — "pick an uncolored interval"
            item = self._find_eligible(i_u, uncolored, red_ints, line)
            if item is not None:
                del self.unplaced[item.id]
                seg = _intersection(item.interval, i_u)
                assert seg is not None
                self.placements[item.id] = Placement(item.id, h, item.size, item.interval)
                rect = _Rect(seg[0], seg[1], h - item.size, h)
                self._insert_sorted(self.red, rect)
                red_ints = _merge_sorted(red_ints, [seg])
                uncolored.pop(0)
                # Left/right remainders of I_u stay uncolored at this altitude;
                # both lie left of every other uncolored interval, in order.
                pieces: list[FPair] = []
                if i_u[0] < item.left:
                    pieces.append((i_u[0], min(item.left, i_u[1])))
                if i_u[1] > item.right:
                    pieces.append((max(item.right, i_u[0]), i_u[1]))
                uncolored = pieces + uncolored
                new_altitudes.append(h - item.size)
            else:
                self._insert_sorted(
                    self.blue, _Rect(i_u[0], i_u[1], Fraction(0), h)
                )
                uncolored.pop(0)
        return new_altitudes

    def _find_eligible(
        self,
        i_u: FPair,
        uncolored: Sequence[FPair],
        red_ints: Sequence[FPair],
        line: Sequence[FPair],
    ) -> _FracItem | None:
        """Paper step 7: an unplaced item intersecting ``i_u`` but nothing else.

        The item's active interval must (a) intersect ``i_u``, (b) be
        disjoint from every *other* uncolored interval and every red interval
        at this altitude, and (c) lie entirely on the chart line at this
        altitude, i.e. ``S_S(t) ≥ h`` throughout ``I(r)``.  Condition (c) is
        implicit in the paper's statement but required by its Lemma 3 proof
        sketch ("it is obvious that r's upper boundary is within the demand
        chart" only holds when the line covers the whole interval); without
        it, placements can stick out of the chart and break the Theorem 2
        open-bin bound.  Candidates are scanned in id order for determinism.
        """
        others = [iv for iv in uncolored if iv != i_u]
        for item_id in sorted(self.unplaced):
            it = self.unplaced[item_id]
            if not _intersects(it.interval, i_u):
                continue
            if any(_intersects(it.interval, iv) for iv in others):
                continue
            if any(_intersects(it.interval, iv) for iv in red_ints):
                continue
            if _subtract([it.interval], list(line)):
                continue  # part of I(r) is off the chart line at this altitude
            return it
        return None


# ---------------------------------------------------------------------------
# Phase 2 + the packer
# ---------------------------------------------------------------------------

HALF = Fraction(1, 2)


def _stripe_assignment(placement: Placement, num_stripes: int) -> tuple[str, int]:
    """Map a placement to its Phase 2 bin: ``("stripe", k)`` or ``("cross", k)``.

    Stripe ``k`` (1-based) covers altitudes ``((k-1)/2, k/2]``; an item lies
    within stripe ``k`` iff ``(k-1)/2 <= alt_low < alt_high <= k/2``, and
    otherwise (only possible when ``2·alt_high`` is not an integer, since
    sizes are ≤ 1/2) it crosses exactly the boundary ``k/2`` with
    ``k = ⌊2·alt_high⌋``.
    """
    two_h = 2 * placement.alt_high
    k = _fceil(two_h)
    if k < 1:
        k = 1
    if Fraction(k - 1, 2) <= placement.alt_low:
        return ("stripe", k)
    k_cross = two_h.numerator // two_h.denominator  # exact floor
    if not (placement.alt_low < Fraction(k_cross, 2) < placement.alt_high):
        raise ReproError(
            f"placement of item {placement.item_id} at altitude "
            f"{placement.altitude} fits no stripe and no boundary — "
            f"invariant violation"
        )
    if not 1 <= k_cross <= num_stripes - 1:
        raise ReproError(
            f"crossing index {k_cross} out of range 1..{num_stripes - 1} "
            f"for item {placement.item_id}"
        )
    return ("cross", k_cross)


@register_packer("dual-coloring")
class DualColoringPacker(OfflinePacker):
    """The Dual Coloring 4-approximation algorithm.

    Args:
        strict: When True (default), verify the paper's structural lemmas on
            the Phase 1 output (placements inside the chart, overlap depth
            ≤ 2) and raise :class:`ReproError` on any violation.  The checks
            are exact and cost ``O(n²)`` — negligible next to Phase 1 itself.
    """

    name = "dual-coloring"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def describe(self) -> str:
        return "dual-coloring"

    # -- small-group machinery, exposed for tests ------------------------------

    @staticmethod
    def _to_frac_items(items: Iterable[Item]) -> list[_FracItem]:
        return [
            _FracItem(r.id, Fraction(r.size), Fraction(r.arrival), Fraction(r.departure))
            for r in items
        ]

    def place_small_items(
        self, small: Sequence[Item]
    ) -> tuple[dict[int, Placement], DemandChart]:
        """Run Phase 1 on the small group; returns placements and the chart."""
        fr_items = self._to_frac_items(small)
        chart = DemandChart(fr_items)
        phase1 = _Phase1(fr_items, chart)
        phase1.run()
        if self.strict:
            self._check_lemmas(fr_items, phase1.placements, chart)
        return phase1.placements, chart

    def _check_lemmas(
        self,
        fr_items: Sequence[_FracItem],
        placements: dict[int, Placement],
        chart: DemandChart,
    ) -> None:
        # Lemma 3: every placed rectangle lies within the demand chart.
        for p in placements.values():
            if p.alt_low < 0 or not chart.height_covers(p.interval, p.alt_high):
                raise ReproError(
                    f"item {p.item_id} placed at altitude {p.altitude} sticks "
                    f"out of the demand chart — Lemma 3 violated"
                )
        # Lemma 5: no three placements overlap (depth ≤ 2 at every point).
        # Sweep over chart time segments; within one, check altitude overlap.
        for left, right, _h in chart.segments:
            active = [
                p
                for p in placements.values()
                if p.interval[0] < right and left < p.interval[1]
            ]
            events: list[tuple[Fraction, int]] = []
            for p in active:
                # Altitude range (alt_low, alt_high]: open at the bottom, so
                # a rectangle ending where another starts does not overlap.
                events.append((p.alt_low, +1))
                events.append((p.alt_high, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            depth = 0
            for _alt, delta in events:
                # Process the close (-1) before the open (+1) at equal
                # altitudes: (a, b] and (b, c] are disjoint.
                depth += delta
                if depth > 2:
                    raise ReproError(
                        f"three item placements overlap in [{left}, {right}) — "
                        f"Lemma 5 violated"
                    )

    # -- the full algorithm --------------------------------------------------------

    def _assign(self, items: ItemList) -> dict[int, int]:
        small = [r for r in items if r.size <= 0.5]
        large = [r for r in items if r.size > 0.5]
        assignment: dict[int, int] = {}
        next_bin = 0

        # Large group: plain First Fit (any feasible packing satisfies the
        # ⌊2·S_L(t)⌋ open-bin bound because concurrent large items cannot share).
        if large:
            from .anyfit import FirstFitPacker

            ff = FirstFitPacker()
            ff.reset()
            large_assignment = ff.pack_stream(sorted(large, key=lambda r: (r.arrival, r.id)))
            used = sorted(set(large_assignment.values()))
            remap = {old: i for i, old in enumerate(used)}
            for item_id, old in large_assignment.items():
                assignment[item_id] = remap[old]
            next_bin = len(used)

        if small:
            placements, chart = self.place_small_items(small)
            num_stripes = max(_fceil(2 * chart.max_height()), 1)
            bin_keys: dict[tuple[str, int], int] = {}
            for r in small:
                key = _stripe_assignment(placements[r.id], num_stripes)
                if key not in bin_keys:
                    bin_keys[key] = next_bin
                    next_bin += 1
                assignment[r.id] = bin_keys[key]

        return assignment
