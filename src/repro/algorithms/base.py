"""Packer base classes and the algorithm registry.

Two families of packers exist, mirroring the paper's offline/online split:

* :class:`OfflinePacker` sees the whole :class:`~repro.core.ItemList` at once
  and may process items in any order (e.g. Duration Descending First Fit,
  Dual Coloring).
* :class:`OnlinePacker` must place items irrevocably in arrival order.  In the
  *clairvoyant* setting the packer may read each item's departure time when
  placing it; non-clairvoyant baselines simply never look at it.

Every packer produces a :class:`~repro.core.PackingResult`.  The registry maps
stable string names to packer factories so benches and the cloud scheduler can
be configured by name.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable

from ..core.bins import Bin
from ..core.items import Item, ItemList
from ..core.packing import PackingResult

__all__ = [
    "Packer",
    "OfflinePacker",
    "OnlinePacker",
    "register_packer",
    "get_packer",
    "available_packers",
]


class Packer(abc.ABC):
    """Common interface of all packing algorithms."""

    #: Stable machine-readable algorithm name (set by subclasses).
    name: str = "packer"

    @abc.abstractmethod
    def pack(self, items: ItemList) -> PackingResult:
        """Pack all items, returning the resulting assignment."""

    def describe(self) -> str:
        """Human-readable one-line description (name + parameters)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class OfflinePacker(Packer):
    """A packer allowed to inspect the whole item list before placing."""

    def pack(self, items: ItemList) -> PackingResult:
        assignment = self._assign(items)
        return PackingResult(items, assignment, algorithm=self.describe())

    @abc.abstractmethod
    def _assign(self, items: ItemList) -> dict[int, int]:
        """Compute the item-id → bin-index assignment."""


class OnlinePacker(Packer):
    """A packer that places items one at a time, in arrival order.

    Subclasses implement :meth:`place`, which must decide irrevocably where
    the presented item goes.  The base class manages the shared pool of bins
    (``self._bins``) and the opening counter; :meth:`open_bin` creates a new
    bin with the next index.

    The driver presents items in arrival order (ties broken by item id,
    matching :func:`repro.core.event_stream`).  A fresh :meth:`reset` happens
    at the start of each :meth:`pack`, so a packer instance is reusable.
    """

    def __init__(self) -> None:
        self._bins: list[Bin] = []

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Clear all state before packing a new item list."""
        self._bins = []

    def pack(self, items: ItemList) -> PackingResult:
        self.reset()
        assignment: dict[int, int] = {}
        for item in items:  # ItemList iterates in arrival order
            assignment[item.id] = self.place(item)
        return PackingResult(items, assignment, algorithm=self.describe())

    def pack_stream(self, items: Iterable[Item]) -> dict[int, int]:
        """Pack an already-ordered stream without building a result object.

        Used by the event-driven simulator, which interleaves its own
        bookkeeping between placements.  The caller is responsible for
        calling :meth:`reset` first and for arrival ordering.
        """
        return {item.id: self.place(item) for item in items}

    # -- bin pool ----------------------------------------------------------------

    @property
    def bins(self) -> list[Bin]:
        """All bins ever opened, in opening order."""
        return self._bins

    def open_bin(self) -> Bin:
        """Open a fresh bin with the next index and return it."""
        b = Bin(len(self._bins))
        self._bins.append(b)
        return b

    def open_bins_at(self, t: float) -> list[Bin]:
        """Bins with at least one item active at ``t``, in opening order.

        A bin whose items have all departed is *closed* (paper §5) and is
        never considered for new placements — re-using it would cost the same
        as a new bin and would muddle the analysis.
        """
        return [b for b in self._bins if b.is_open_at(t)]

    # -- the decision ---------------------------------------------------------------

    @abc.abstractmethod
    def place(self, item: Item) -> int:
        """Choose a bin for ``item`` and commit it; return the bin index."""


# -- registry ------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., Packer]] = {}


def register_packer(name: str) -> Callable[[Callable[..., Packer]], Callable[..., Packer]]:
    """Class decorator registering a packer factory under ``name``."""

    def deco(factory: Callable[..., Packer]) -> Callable[..., Packer]:
        if name in _REGISTRY:
            raise ValueError(f"packer name already registered: {name}")
        _REGISTRY[name] = factory
        return factory

    return deco


def get_packer(name: str, **kwargs: object) -> Packer:
    """Instantiate a registered packer by name.

    Raises:
        KeyError: for unknown names; the message lists what is available.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown packer {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(**kwargs)


def available_packers() -> list[str]:
    """Sorted names of all registered packers."""
    return sorted(_REGISTRY)
