"""Packer base classes and the algorithm registry.

Two families of packers exist, mirroring the paper's offline/online split:

* :class:`OfflinePacker` sees the whole :class:`~repro.core.ItemList` at once
  and may process items in any order (e.g. Duration Descending First Fit,
  Dual Coloring).
* :class:`OnlinePacker` must place items irrevocably in arrival order.  In the
  *clairvoyant* setting the packer may read each item's departure time when
  placing it; non-clairvoyant baselines simply never look at it.

Every packer produces a :class:`~repro.core.PackingResult`.  The registry maps
stable string names to packer factories so benches, the CLI, the cloud
scheduler and the streaming engine can be configured by name;
:func:`get_packer` validates keyword arguments against each factory's
declared parameters and :func:`available_packers` exposes the per-packer
parameter metadata.

Online packers carry an **indexed bin pool**: a lazy min-heap over bin close
times retires departed bins in O(log n), so :meth:`OnlinePacker.open_bins_at`
at the arrival frontier touches only the bins that are actually open instead
of rescanning every bin ever opened.  Both batch :meth:`OnlinePacker.pack`
and the streaming :class:`~repro.engine.PackingSession` run on this index.
"""

from __future__ import annotations

import abc
import heapq
import inspect
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..core.batch import ArrivalBatch
from ..core.bins import Bin
from ..core.exceptions import RegistryError, UnknownPackerError
from ..core.items import Item, ItemList
from ..core.packing import PackingResult

__all__ = [
    "Packer",
    "OfflinePacker",
    "OnlinePacker",
    "BatchPlacement",
    "ParamInfo",
    "PackerInfo",
    "register_packer",
    "get_packer",
    "packer_info",
    "available_packers",
]


class Packer(abc.ABC):
    """Common interface of all packing algorithms."""

    #: Stable machine-readable algorithm name (set by subclasses).
    name: str = "packer"

    @abc.abstractmethod
    def pack(self, items: ItemList) -> PackingResult:
        """Pack all items, returning the resulting assignment."""

    def describe(self) -> str:
        """Human-readable one-line description (name + parameters)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class OfflinePacker(Packer):
    """A packer allowed to inspect the whole item list before placing."""

    def pack(self, items: ItemList) -> PackingResult:
        assignment = self._assign(items)
        return PackingResult(items, assignment, algorithm=self.describe())

    @abc.abstractmethod
    def _assign(self, items: ItemList) -> dict[int, int]:
        """Compute the item-id → bin-index assignment."""


_NEG_INF = float("-inf")


@dataclass(frozen=True, slots=True)
class BatchPlacement:
    """Result of one :meth:`OnlinePacker.place_many` call.

    Attributes:
        indices: ``(n,)`` int64 array — the bin index each batch row was
            committed to, in row order (never ``-1``: the packer itself
            always places; fault-driven drops happen in the session layer).
        open_bins: ``(n,)`` int64 array — the number of open bins right
            after each row's placement, measured at that row's arrival time
            (what the scalar path reads via ``len(open_bins_at(arrival))``).
        bins_retired: Total bins retired while advancing through the batch's
            arrivals (matches the sum the scalar loop would accumulate).
    """

    indices: np.ndarray
    open_bins: np.ndarray
    bins_retired: int


class OnlinePacker(Packer):
    """A packer that places items one at a time, in arrival order.

    Subclasses implement :meth:`place`, which must decide irrevocably where
    the presented item goes.  The base class manages the shared pool of bins
    (``self._bins``) and the opening counter; :meth:`open_bin` creates a new
    bin with the next index.

    The driver presents items in arrival order (ties broken by item id,
    matching :func:`repro.core.event_stream`).  A fresh :meth:`reset` happens
    at the start of each :meth:`pack`, so a packer instance is reusable.

    **Incremental place contract.**  ``place(item)`` must commit *exactly*
    the presented item to the bin whose index it returns, and nothing else —
    the streaming engine relies on this to feed items one at a time and to
    amend mispredicted departures afterwards.  Subclasses should commit via
    :meth:`commit`, which also maintains the open-bin index; committing with
    ``bin.place`` directly stays correct because every driver (``pack``,
    ``pack_stream``, the engine session) re-syncs the index from the returned
    bin after each placement.
    """

    #: Dimensionality of the bins this packer opens.  Scalar packers keep the
    #: default 1; vector packers set it per instance (possibly inferring it
    #: from the first item, in which case it may be ``None`` until then).
    dims: int | None = 1

    def __init__(self) -> None:
        self._bins: list[Bin] = []
        self._open: set[int] = set()
        self._close_times: list[float] = []
        self._retire_heap: list[tuple[float, int]] = []
        self._frontier = _NEG_INF

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Clear all state before packing a new item list."""
        self._bins = []
        self._open = set()
        self._close_times = []
        self._retire_heap = []
        self._frontier = _NEG_INF

    def pack(self, items: ItemList) -> PackingResult:
        """Pack all items, returning the resulting assignment."""
        self.reset()
        for item in items:  # ItemList iterates in arrival order
            index = self.place(item)
            self._note_commit(index, item)
        return PackingResult.from_bins(self._bins, items, algorithm=self.describe())

    def pack_stream(self, items: Iterable[Item]) -> dict[int, int]:
        """Pack an already-ordered stream without building a result object.

        Used by the event-driven simulator, which interleaves its own
        bookkeeping between placements.  The caller is responsible for
        calling :meth:`reset` first and for arrival ordering.
        """
        assignment: dict[int, int] = {}
        for item in items:
            index = self.place(item)
            self._note_commit(index, item)
            assignment[item.id] = index
        return assignment

    def place_many(self, batch: ArrivalBatch) -> BatchPlacement:
        """Place a whole :class:`~repro.core.ArrivalBatch`, row by row.

        The default implementation is the scalar loop — it materialises each
        row as an :class:`~repro.core.Item` and routes it through
        :meth:`place`, retiring departed bins at every arrival exactly as the
        streaming session does.  Columnar packers (the ``vector-*`` family
        with SoA enabled) override this with an array-at-a-time fast path;
        either way the placements are bit-identical to the scalar loop, which
        is asserted by the parity battery in ``tests/test_engine.py`` and
        ``benchmarks/bench_columnar.py``.

        The caller (``PackingSession.submit_many``) guarantees rows arrive in
        non-decreasing arrival order with unique, fresh ids.
        """
        n = len(batch)
        indices = np.empty(n, dtype=np.int64)
        opens = np.empty(n, dtype=np.int64)
        retired = 0
        for i in range(n):
            item = batch.item(i)
            retired += len(self.retire_until(item.arrival))
            index = self.place(item)
            self._note_commit(index, item)
            indices[i] = index
            opens[i] = len(self._open)
        return BatchPlacement(indices=indices, open_bins=opens, bins_retired=retired)

    # -- bin pool ----------------------------------------------------------------

    @property
    def bins(self) -> list[Bin]:
        """All bins ever opened, in opening order."""
        return self._bins

    def bin_count(self) -> int:
        """Number of bins ever opened.

        Equivalent to ``len(self.bins)`` but safe to call on the batch hot
        path: packers that defer :class:`~repro.core.Bin` materialisation
        (the SoA ``place_many`` fast path) can answer without flushing.
        """
        return len(self._close_times)

    def open_bin(self) -> Bin:
        """Open a fresh bin with the next index and return it."""
        b = Bin(len(self._bins), dims=self.dims or 1)
        self._bins.append(b)
        self._close_times.append(_NEG_INF)
        return b

    def commit(self, b: Bin, item: Item, *, check: bool = False) -> int:
        """Commit ``item`` to bin ``b`` and update the open-bin index.

        The preferred way for :meth:`place` implementations to commit their
        decision; returns the bin index so ``place`` can end with
        ``return self.commit(target, item)``.
        """
        b.place(item, check=check)
        self._note_commit(b.index, item)
        return b.index

    def _note_commit(self, index: int, item: Item) -> None:
        """Sync the open-bin index after ``item`` landed in bin ``index``.

        Idempotent: drivers call it after every ``place`` even when the
        placement already went through :meth:`commit`.
        """
        close = self._bins[index].close_time()
        if self._close_times[index] != close:
            self._close_times[index] = close
            heapq.heappush(self._retire_heap, (close, index))
        self._open.add(index)
        if item.arrival > self._frontier:
            self._frontier = item.arrival

    def retire_until(self, t: float) -> list[Bin]:
        """Drop bins whose close time is ``<= t`` from the open set.

        Returns the newly retired bins (in retirement order).  Uses the lazy
        close-time heap: stale entries — from bins whose close time moved
        after the entry was pushed — are skipped, so each entry is paid for
        once, O(log n).
        """
        retired: list[Bin] = []
        heap = self._retire_heap
        while heap and heap[0][0] <= t:
            close, index = heapq.heappop(heap)
            if close != self._close_times[index]:
                continue  # stale: the bin's close time has since moved
            if index in self._open:
                self._open.discard(index)
                retired.append(self._bins[index])
        return retired

    def amend_last(self, bin_index: int, actual: Item) -> None:
        """Replace the item just committed to ``bin_index`` with ``actual``.

        Supports noisy clairvoyance: the packer decided on a *predicted*
        departure, but the bin must track the *actual* occupancy a real
        system would observe.  Updates the bin and the open-bin index.

        Raises:
            ValidationError: if that bin's last item has a different id
                (the placement contract was broken).
        """
        b = self._bins[bin_index]
        b.amend_last(actual)
        self._note_commit(bin_index, actual)

    def open_bins_at(self, t: float) -> list[Bin]:
        """Bins with at least one item active at ``t``, in opening order.

        A bin whose items have all departed is *closed* (paper §5) and is
        never considered for new placements — re-using it would cost the same
        as a new bin and would muddle the analysis.

        At or beyond the arrival frontier (the hot path: every placement
        queries its own arrival time) this reads the retire-heap index and
        touches only open bins.  Queries strictly in the past fall back to
        the exact linear scan, since a bin may have usage gaps there.
        """
        if t >= self._frontier:
            self.retire_until(t)
            return [
                self._bins[i] for i in sorted(self._open) if self._close_times[i] > t
            ]
        return [b for b in self._bins if b.is_open_at(t)]

    # -- the decision ---------------------------------------------------------------

    @abc.abstractmethod
    def place(self, item: Item) -> int:
        """Choose a bin for ``item`` and commit it; return the bin index."""


# -- registry ------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ParamInfo:
    """One constructor parameter of a registered packer.

    Attributes:
        name: Parameter name as accepted by :func:`get_packer`.
        required: True when the parameter has no default.
        default: The default value (``None`` when required).
        annotation: The declared type annotation as text ("" if absent).
    """

    name: str
    required: bool
    default: object
    annotation: str

    def describe(self) -> str:
        """Render as ``name`` / ``name=default`` for error messages."""
        return self.name if self.required else f"{self.name}={self.default!r}"


@dataclass(frozen=True, slots=True)
class PackerInfo:
    """Registry metadata of one packer: its name and declared parameters.

    Attributes:
        name: The registry name.
        params: Declared constructor parameters, in declaration order.
        accepts_extra: True when the factory takes ``**kwargs`` (no keyword
            validation is possible).
        summary: First line of the factory's docstring.
        dims: Item dimensionalities the packer supports — a tuple of allowed
            values, or ``None`` for *any* dimensionality (the vector
            packers).  Scalar packers declare the default ``(1,)``.
    """

    name: str
    params: tuple[ParamInfo, ...]
    accepts_extra: bool
    summary: str
    dims: tuple[int, ...] | None = (1,)

    def param_names(self) -> tuple[str, ...]:
        """Accepted keyword names, in declaration order."""
        return tuple(p.name for p in self.params)

    def required_params(self) -> tuple[str, ...]:
        """Names of the parameters without defaults."""
        return tuple(p.name for p in self.params if p.required)

    def supports_dims(self, dims: int) -> bool:
        """True iff the packer can place ``dims``-dimensional items."""
        return self.dims is None or dims in self.dims

    def describe_dims(self) -> str:
        """Render the supported dimensionalities for listings/messages."""
        if self.dims is None:
            return "any"
        return ", ".join(str(d) for d in self.dims)


_REGISTRY: dict[str, Callable[..., Packer]] = {}
_INFO: dict[str, PackerInfo] = {}


def _inspect_factory(
    name: str,
    factory: Callable[..., Packer],
    dims: tuple[int, ...] | None = (1,),
) -> PackerInfo:
    """Build :class:`PackerInfo` from a factory's signature and docstring."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return PackerInfo(name=name, params=(), accepts_extra=True, summary="", dims=dims)
    params: list[ParamInfo] = []
    accepts_extra = False
    for p in signature.parameters.values():
        if p.name == "self" or p.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            accepts_extra = True
            continue
        required = p.default is inspect.Parameter.empty
        annotation = "" if p.annotation is inspect.Parameter.empty else str(p.annotation)
        params.append(
            ParamInfo(
                name=p.name,
                required=required,
                default=None if required else p.default,
                annotation=annotation,
            )
        )
    doc = inspect.getdoc(factory) or ""
    summary = doc.splitlines()[0].strip() if doc else ""
    return PackerInfo(
        name=name,
        params=tuple(params),
        accepts_extra=accepts_extra,
        summary=summary,
        dims=dims,
    )


def register_packer(
    name: str, *, dims: tuple[int, ...] | None = (1,)
) -> Callable[[Callable[..., Packer]], Callable[..., Packer]]:
    """Class decorator registering a packer factory under ``name``.

    Args:
        name: Stable registry name.
        dims: Item dimensionalities the packer supports; ``None`` means any
            (see :attr:`PackerInfo.dims`).
    """

    def deco(factory: Callable[..., Packer]) -> Callable[..., Packer]:
        if name in _REGISTRY:
            raise RegistryError(f"packer name already registered: {name}")
        _REGISTRY[name] = factory
        _INFO[name] = _inspect_factory(name, factory, dims)
        return factory

    return deco


def _unknown_name_error(name: str) -> UnknownPackerError:
    return UnknownPackerError(
        f"packer {name!r}: unknown packer; available: {', '.join(sorted(_REGISTRY))}"
    )


def get_packer(name: str, **kwargs: object) -> Packer:
    """Instantiate a registered packer by name, validating its parameters.

    Keyword arguments are checked against the factory's declared parameters
    (its ``__init__`` signature) *before* instantiation, so a typo'd or
    unsupported parameter fails loudly instead of being silently accepted.

    A ``dims`` keyword is additionally checked against the packer's declared
    dimensionality capability (:attr:`PackerInfo.dims`): passing the
    dimensionality of the instance to be packed rejects incompatible packers
    up front (e.g. a scalar-only packer for a 3-resource trace).  When the
    factory itself declares a ``dims`` parameter (the vector packers), the
    value is forwarded; otherwise it is consumed by the validation alone.

    Every failure path raises the same uniform
    :class:`~repro.core.RegistryError` shape (a
    :class:`~repro.core.ValidationError`, hence also a ``ValueError``) with a
    ``packer '<name>':`` message prefix; unknown names raise
    :class:`~repro.core.UnknownPackerError`, which also subclasses
    ``KeyError`` for mapping-style callers.

    Raises:
        UnknownPackerError: for unknown names; the message lists what is
            available.
        RegistryError: for unknown keyword arguments, missing required ones,
            or an unsupported ``dims``; the message lists the packer's
            accepted parameters / supported dimensionalities.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise _unknown_name_error(name) from None
    info = _INFO[name]
    dims = kwargs.get("dims")
    if dims is not None:
        if isinstance(dims, bool) or not isinstance(dims, int) or dims < 1:
            raise RegistryError(
                f"packer {name!r}: dims must be a positive integer, got {dims!r}"
            )
        if not info.supports_dims(dims):
            raise RegistryError(
                f"packer {name!r}: does not support {dims}-dimensional items; "
                f"supported dims: {info.describe_dims()}"
            )
        if "dims" not in info.param_names() and not info.accepts_extra:
            kwargs = {k: v for k, v in kwargs.items() if k != "dims"}
    if not info.accepts_extra:
        accepted = info.param_names()
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            listing = ", ".join(p.describe() for p in info.params) or "none"
            raise RegistryError(
                f"packer {name!r}: unknown parameter(s) {', '.join(unknown)}; "
                f"accepted: {listing}"
            )
        missing = sorted(set(info.required_params()) - set(kwargs))
        if missing:
            raise RegistryError(
                f"packer {name!r}: requires parameter(s): {', '.join(missing)}"
            )
    return factory(**kwargs)


def packer_info(name: str) -> PackerInfo:
    """The declared parameter metadata of one registered packer.

    Raises:
        UnknownPackerError: for unknown names; the message lists what is
            available.
    """
    if name not in _INFO:
        raise _unknown_name_error(name)
    return _INFO[name]


def available_packers() -> dict[str, PackerInfo]:
    """All registered packers: name → parameter metadata, sorted by name.

    The mapping iterates in name order, so existing callers that treated the
    result as a list of names (``for name in available_packers()``,
    ``"first-fit" in available_packers()``) keep working unchanged.
    """
    return {name: _INFO[name] for name in sorted(_REGISTRY)}
