"""Exact solvers: classical bin packing, the repacking adversary, and tiny-OPT.

The paper measures all ratios against the *optimal offline adversary that can
repack everything at any time* (§3.2):

    ``OPT_total(R) = ∫ OPT(R, t) dt``

where ``OPT(R, t)`` is the minimum number of unit bins into which the items
active at time ``t`` can be packed — a classical (static) bin packing
instance.  The production solver for the integral lives in
:mod:`repro.algorithms.adversary` (sweep line + memoization + warm starts);
this module keeps the building blocks: the exact classical solver
:func:`bin_packing_min_bins` (branch and bound with first-fit-decreasing
upper bounds, the L2 lower bound of Martello & Toth, closing perfect-fit
dominance and optional warm-started upper bounds), its
:class:`SolverStats` observability counters, and
:func:`opt_total_scan` — the straightforward one-rescan-per-interval
reference implementation that benches and parity tests compare against.

For very small instances, :func:`optimal_packing` additionally finds the best
*non-repacking* assignment (the true optimum of the DBP problem itself) by
exhaustive branch-and-bound over assignments; it is used in tests to sanity
check that ``opt_total <= optimal_packing`` and that the approximation
algorithms sit between the two.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.bins import Bin
from ..core.exceptions import SolverLimitError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..resilience.deadline import Deadline
from ..core.items import ItemList
from ..core.packing import PackingResult
from ..core.stepfun import DEFAULT_TOL
from ..obs import Histogram, TelemetryRegistry

__all__ = [
    "SolverStats",
    "bin_packing_min_bins",
    "opt_total_scan",
    "optimal_packing",
]


#: Counter cells behind :class:`SolverStats`, in declaration (report) order.
SOLVER_FIELDS = (
    "nodes",
    "lb_prunes",
    "dominance_hits",
    "warm_start_hits",
    "memo_hits",
    "memo_misses",
    "slices",
    "slices_reused",
    "incremental_evals",
    "full_evals",
)


class SolverStats:
    """Mutable counters of the exact adversary pipeline.

    The :class:`~repro.engine.EngineStats` of the solver layer: every
    component that accepts a ``stats`` argument increments these in place, so
    one object threaded through a sweep aggregates the whole run.  Each
    field is a thin view over a ``solver.<field>`` counter cell in
    ``self.registry`` — pass a shared
    :class:`~repro.obs.TelemetryRegistry` to aggregate the adversary's
    counters with the rest of a run's telemetry (non-zero constructor values
    *add* into an already-populated shared registry).

    Attributes:
        nodes: Branch-and-bound nodes expanded.
        lb_prunes: Branches cut because a lower bound met the incumbent
            (the L2 bound at the root, the continuous bound inside the tree).
        dominance_hits: Closing perfect-fit dominance applications (the
            current item filled a bin that no two further items could enter,
            so all sibling branches were skipped).
        warm_start_hits: Solves whose warm-started upper bound (previous
            slice's optimum plus its arrivals) beat the FFD bound.
        memo_hits: Slice instances answered from the memo cache.
        memo_misses: Slice instances that had to be solved.
        slices: Elementary intervals processed by ``opt_total``.
        slices_reused: Slices an incremental re-evaluation copied verbatim
            from the previous evaluation (no rescan, no memo lookup).
        incremental_evals: Oracle evaluations served by the incremental
            (mutation-window) path.
        full_evals: Oracle / ``opt_total`` evaluations that swept the whole
            timeline.
        solve_latency: Per-solve latency :class:`~repro.obs.Histogram` of
            the uncached :func:`bin_packing_min_bins` calls issued by the
            sweep (recorded only while telemetry timing is enabled; not part
            of :meth:`as_dict`).
        registry: The backing :class:`~repro.obs.TelemetryRegistry`.
    """

    __slots__ = ("registry", "_solve_latency") + tuple(f"_{name}" for name in SOLVER_FIELDS)

    def __init__(
        self,
        nodes: int = 0,
        lb_prunes: int = 0,
        dominance_hits: int = 0,
        warm_start_hits: int = 0,
        memo_hits: int = 0,
        memo_misses: int = 0,
        slices: int = 0,
        slices_reused: int = 0,
        incremental_evals: int = 0,
        full_evals: int = 0,
        *,
        registry: TelemetryRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else TelemetryRegistry()
        initial = (
            nodes,
            lb_prunes,
            dominance_hits,
            warm_start_hits,
            memo_hits,
            memo_misses,
            slices,
            slices_reused,
            incremental_evals,
            full_evals,
        )
        for name, value in zip(SOLVER_FIELDS, initial):
            cell = self.registry.counter(f"solver.{name}")
            cell.value += int(value)
            setattr(self, f"_{name}", cell)
        self._solve_latency = self.registry.histogram("solver.solve_latency")

    # -- the legacy attribute API (thin views over the registry cells) -------

    @property
    def nodes(self) -> int:
        """Branch-and-bound nodes expanded."""
        return self._nodes.value

    @nodes.setter
    def nodes(self, value: int) -> None:
        self._nodes.value = value

    @property
    def lb_prunes(self) -> int:
        """Branches cut because a lower bound met the incumbent."""
        return self._lb_prunes.value

    @lb_prunes.setter
    def lb_prunes(self, value: int) -> None:
        self._lb_prunes.value = value

    @property
    def dominance_hits(self) -> int:
        """Closing perfect-fit dominance applications."""
        return self._dominance_hits.value

    @dominance_hits.setter
    def dominance_hits(self, value: int) -> None:
        self._dominance_hits.value = value

    @property
    def warm_start_hits(self) -> int:
        """Solves whose warm-started upper bound beat the FFD bound."""
        return self._warm_start_hits.value

    @warm_start_hits.setter
    def warm_start_hits(self, value: int) -> None:
        self._warm_start_hits.value = value

    @property
    def memo_hits(self) -> int:
        """Slice instances answered from the memo cache."""
        return self._memo_hits.value

    @memo_hits.setter
    def memo_hits(self, value: int) -> None:
        self._memo_hits.value = value

    @property
    def memo_misses(self) -> int:
        """Slice instances that had to be solved."""
        return self._memo_misses.value

    @memo_misses.setter
    def memo_misses(self, value: int) -> None:
        self._memo_misses.value = value

    @property
    def slices(self) -> int:
        """Elementary intervals processed by ``opt_total``."""
        return self._slices.value

    @slices.setter
    def slices(self, value: int) -> None:
        self._slices.value = value

    @property
    def slices_reused(self) -> int:
        """Slices an incremental re-evaluation copied from the previous one."""
        return self._slices_reused.value

    @slices_reused.setter
    def slices_reused(self, value: int) -> None:
        self._slices_reused.value = value

    @property
    def incremental_evals(self) -> int:
        """Oracle evaluations served by the incremental path."""
        return self._incremental_evals.value

    @incremental_evals.setter
    def incremental_evals(self, value: int) -> None:
        self._incremental_evals.value = value

    @property
    def full_evals(self) -> int:
        """Evaluations that swept the whole timeline."""
        return self._full_evals.value

    @full_evals.setter
    def full_evals(self, value: int) -> None:
        self._full_evals.value = value

    @property
    def solve_latency(self) -> Histogram:
        """Per-solve latency distribution of uncached classical solves."""
        return self._solve_latency

    # -- aggregation and serialisation ---------------------------------------

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabulation and JSON reports."""
        return {name: getattr(self, name) for name in SOLVER_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "SolverStats":
        """Rebuild stats from :meth:`as_dict` output (JSON round-trip)."""
        return cls(**{k: int(v) for k, v in data.items()})

    def merge(self, other: "SolverStats") -> None:
        """Add ``other``'s counters (and latency buckets) into this object."""
        for name in SOLVER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other._solve_latency.count:
            self._solve_latency.merge(other._solve_latency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolverStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"SolverStats({self.as_dict()!r})"


# ---------------------------------------------------------------------------
# Classical bin packing (sizes only), exact
# ---------------------------------------------------------------------------


def _ffd_bins(sizes: Sequence[float], tol: float, *, presorted: bool = False) -> int:
    """First-Fit-Decreasing upper bound on the optimal bin count.

    Args:
        sizes: Item sizes.
        tol: Capacity tolerance.
        presorted: Set when ``sizes`` is already in decreasing order to skip
            the re-sort (the exact solver sorts once and reuses the order).
    """
    levels: list[float] = []
    ordered = sizes if presorted else sorted(sizes, reverse=True)
    for s in ordered:
        for i, lvl in enumerate(levels):
            if lvl + s <= 1.0 + tol:
                levels[i] = lvl + s
                break
        else:
            levels.append(s)
    return len(levels)


def _l2_lower_bound(sizes: Sequence[float], tol: float) -> int:
    """Martello–Toth L2 lower bound on the optimal bin count.

    For each threshold ``k`` in the item sizes, items larger than ``1-k``
    cannot share a bin with each other or with items of size ≥ k beyond
    capacity; the bound maximises over thresholds.  Always ≥ ⌈Σ sizes⌉ - free
    (we take the max with the continuous bound explicitly).
    """
    if not sizes:
        return 0
    ssorted = sorted(sizes, reverse=True)
    total = sum(ssorted)
    best = max(1, -int(-(total - tol) // 1))  # ceil with tolerance
    for k in {s for s in ssorted if s <= 0.5 + tol}:
        big = [s for s in ssorted if s > 1.0 - k + tol]
        mid = [s for s in ssorted if k - tol <= s <= 1.0 - k + tol]
        if not big and not mid:
            continue
        # Items > 1-k each need their own bin; mid items only fit into the
        # big bins' leftover capacity, the rest need ⌈·⌉ additional bins.
        overflow = sum(mid) - sum(1.0 - s for s in big)
        cand = len(big) + max(0, -int(-(overflow - tol) // 1))
        best = max(best, cand)
    return best


def bin_packing_min_bins(
    sizes: Sequence[float],
    *,
    tol: float = DEFAULT_TOL,
    max_nodes: int = 2_000_000,
    upper_bound: int | None = None,
    stats: SolverStats | None = None,
    deadline: "Deadline | None" = None,
) -> int:
    """Exact minimum number of unit bins for the given sizes.

    Branch and bound: items in decreasing size order; each item goes into an
    existing bin (distinct levels only, to break symmetry) or one new bin.
    Two refinements tighten the search without affecting exactness:

    * **Warm start** — a caller that already knows a valid upper bound (the
      adversary sweep derives one from the previous slice's optimum) passes
      it via ``upper_bound``; when it beats the FFD bound it becomes the
      initial incumbent, so pruning bites from the first node.
    * **Closing perfect-fit dominance** — when the current item fits a bin
      whose residual capacity cannot hold two further items, placing it
      there is provably optimal (exchange argument: any set the adversary
      puts there instead is a single item no larger than the current one),
      so all sibling branches are skipped.

    Args:
        sizes: Item sizes, each in (0, 1].
        tol: Capacity tolerance.
        max_nodes: Search-node budget.
        upper_bound: Optional externally-known valid upper bound on the
            optimum (must be achievable, e.g. derived from a feasible
            packing); the returned value is still the exact optimum.
        stats: Optional :class:`SolverStats` to increment in place.
        deadline: Optional wall-clock :class:`~repro.resilience.Deadline`
            checked at entry and every 1024 search nodes; expiry raises
            :class:`~repro.core.DeadlineExceeded` carrying the best
            feasible count found so far.

    Raises:
        ValidationError: if any size is outside (0, 1].
        SolverLimitError: if the node budget is exhausted before proving
            optimality (carries the best feasible value found).
        DeadlineExceeded: if ``deadline`` expires first.
    """
    for s in sizes:
        if not (0.0 < s <= 1.0 + tol):
            raise ValidationError(f"size out of range (0, 1]: {s}")
    if not sizes:
        return 0
    if deadline is not None:
        deadline.check("bin_packing_min_bins")
    order = sorted(sizes, reverse=True)
    n = len(order)
    best = _ffd_bins(order, tol, presorted=True)
    if upper_bound is not None and upper_bound < best:
        best = upper_bound
        if stats is not None:
            stats.warm_start_hits += 1
    lb = _l2_lower_bound(order, tol)
    if lb >= best:
        if stats is not None:
            stats.lb_prunes += 1
        return best
    suffix = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + order[i]
    nodes = 0
    best_found = best
    smallest = order[-1]
    # A bin whose total residual is below this can receive at most one more
    # item in any completion — the closing perfect-fit dominance condition.
    closing_residual = 2.0 * smallest

    def search(i: int, levels: list[float]) -> None:
        nonlocal best_found, nodes
        nodes += 1
        if nodes > max_nodes:
            if stats is not None:
                stats.nodes += nodes
            raise SolverLimitError(
                f"bin packing B&B exceeded {max_nodes} nodes", best_known=best_found
            )
        # Deadline checks are strided: one clock read per 1024 nodes keeps
        # the bounded path within noise of the unbounded one.
        if deadline is not None and not nodes & 1023 and deadline.expired():
            if stats is not None:
                stats.nodes += nodes
            deadline.check("bin packing B&B", best_known=best_found)
        if i == n:
            best_found = min(best_found, len(levels))
            return
        # Continuous lower bound on the completed solution.
        waste = sum(1.0 - lvl for lvl in levels)
        lower = len(levels) + max(0, -int(-((suffix[i] - waste) - tol) // 1))
        if lower >= best_found:
            if stats is not None:
                stats.lb_prunes += 1
            return
        s = order[i]
        for j, lvl in enumerate(levels):
            if lvl + s <= 1.0 + tol and (
                i == n - 1 or (1.0 + tol) - lvl < closing_residual
            ):
                # Closing perfect fit: this placement is dominant.
                if stats is not None:
                    stats.dominance_hits += 1
                levels[j] = lvl + s
                search(i + 1, levels)
                levels[j] = lvl
                return
        tried: set[float] = set()
        for j, lvl in enumerate(levels):
            if lvl + s <= 1.0 + tol and lvl not in tried:
                tried.add(lvl)
                levels[j] = lvl + s
                search(i + 1, levels)
                levels[j] = lvl
        if len(levels) + 1 < best_found:
            levels.append(s)
            search(i + 1, levels)
            levels.pop()

    try:
        search(0, [])
    except SolverLimitError:
        raise
    else:
        if stats is not None:
            stats.nodes += nodes
    return best_found


# ---------------------------------------------------------------------------
# The repacking adversary OPT_total — reference implementation
# ---------------------------------------------------------------------------


def opt_total_scan(
    items: ItemList, *, tol: float = DEFAULT_TOL, max_nodes: int = 2_000_000
) -> float:
    """Exact ``OPT_total(R) = ∫ OPT(R, t) dt`` by per-interval rescans.

    The straightforward reference implementation: one classical bin packing
    instance per elementary interval, with the active set rebuilt by a full
    O(n) scan per interval and results cached per call on the multiset of
    active sizes.  The production :func:`repro.algorithms.opt_total`
    (sweep line + shared memoization + warm starts) returns bit-identical
    values; benches and parity tests keep this version around as the ground
    truth to diff against.

    Raises:
        SolverLimitError: propagated from :func:`bin_packing_min_bins` if an
            instance exceeds the node budget.
    """
    if not items:
        return 0.0
    times = items.event_times()
    cache: dict[tuple[float, ...], int] = {}
    total = 0.0
    for left, right in zip(times[:-1], times[1:]):
        active = [r.size for r in items if r.arrival <= left and r.departure > left]
        if not active:
            continue
        key = tuple(sorted(active))
        if key not in cache:
            cache[key] = bin_packing_min_bins(key, tol=tol, max_nodes=max_nodes)
        total += cache[key] * (right - left)
    return total


# ---------------------------------------------------------------------------
# Exact non-repacking optimum (tiny instances)
# ---------------------------------------------------------------------------


def optimal_packing(
    items: ItemList, *, max_items: int = 14, max_nodes: int = 5_000_000
) -> PackingResult:
    """The best non-migratory packing of ``items`` by exhaustive B&B.

    Items are assigned in arrival order; each goes to a feasible existing bin
    or to one fresh bin (symmetry-broken).  Pruning uses the current usage
    plus a span lower bound for unassigned items.  Exponential — refuse
    instances above ``max_items``.

    Raises:
        ValidationError: if the instance exceeds ``max_items``.
        SolverLimitError: if the node budget is exhausted.
    """
    if len(items) > max_items:
        raise ValidationError(
            f"optimal_packing is exhaustive; {len(items)} items exceeds the "
            f"limit of {max_items}"
        )
    order = list(items)
    n = len(order)
    if n == 0:
        return PackingResult(items, {}, algorithm="optimal")

    best_usage = float("inf")
    best_assignment: dict[int, int] | None = None
    nodes = 0

    # Precompute a lower bound on the extra usage the remaining items force:
    # the part of their span not coverable by any current bin is at least the
    # span of the remaining items minus total span — we keep it simple and use
    # zero (correct, weaker); current-usage pruning already cuts most of it.

    def usage_of(bins: list[Bin]) -> float:
        return sum(b.usage_time() for b in bins)

    def search(i: int, bins: list[Bin], assignment: dict[int, int]) -> None:
        nonlocal best_usage, best_assignment, nodes
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"optimal_packing exceeded {max_nodes} nodes",
                best_known=None if best_assignment is None else best_usage,
            )
        current = usage_of(bins)
        if current >= best_usage:
            return
        if i == n:
            best_usage = current
            best_assignment = dict(assignment)
            return
        item = order[i]
        for b in bins:
            if b.fits(item):
                b.place(item, check=False)
                assignment[item.id] = b.index
                search(i + 1, bins, assignment)
                del assignment[item.id]
                b.pop_last()
        fresh = Bin(len(bins))
        fresh.place(item, check=False)
        bins.append(fresh)
        assignment[item.id] = fresh.index
        search(i + 1, bins, assignment)
        del assignment[item.id]
        bins.pop()

    search(0, [], {})
    assert best_assignment is not None
    return PackingResult(items, best_assignment, algorithm="optimal")


def brute_force_min_usage(items: ItemList, max_items: int = 8) -> float:
    """Reference optimum by trying *every* assignment (tests only).

    Enumerates all partitions of items into ordered bins via assignment
    vectors with the restricted-growth property; infeasible assignments are
    skipped.  Factorially slow — keep ``max_items`` tiny.
    """
    if len(items) > max_items:
        raise ValidationError(f"brute force limited to {max_items} items")
    order = list(items)
    n = len(order)
    if n == 0:
        return 0.0
    best = float("inf")
    for assignment_vec in itertools.product(range(n), repeat=n):
        # Restricted growth: bin k may appear only if bin k-1 appears earlier.
        maxseen = -1
        ok = True
        for a in assignment_vec:
            if a > maxseen + 1:
                ok = False
                break
            maxseen = max(maxseen, a)
        if not ok:
            continue
        result = PackingResult(
            ItemList(order), {r.id: a for r, a in zip(order, assignment_vec)}
        )
        if result.is_feasible():
            best = min(best, result.total_usage())
    return best
