"""Usage-aware fit — a greedy clairvoyant heuristic (ablation baseline).

The paper's strategies exploit clairvoyance through *classification*.  A
natural engineering alternative is to exploit it *greedily*: place each item
in the open bin whose usage time grows the least, i.e. minimise the
extension ``max(0, departure − bin close time)``.  Optionally, refuse to
extend a bin by more than ``open_threshold ×`` the item's duration and open
a fresh bin instead (a non-Any-Fit move that trades bins for alignment).

This packer exists for the ablation benches: it beats plain First Fit on
benign workloads, but it does **not** escape the retention trap — the
filler's departure lies inside the retainer bin's usage window, so its
extension is zero and the greedy rule happily co-locates them.  The paper's
classification is not just one clairvoyant heuristic among many; it is what
the worst case actually requires (see ``bench_ablation_usage_aware``).

No competitive guarantee is claimed (none exists in the paper).
"""

from __future__ import annotations

from ..core.exceptions import ValidationError
from ..core.items import Item
from .base import OnlinePacker, register_packer

__all__ = ["UsageAwareFitPacker"]


@register_packer("usage-aware-fit")
class UsageAwareFitPacker(OnlinePacker):
    """Place items where they extend bin usage the least.

    Args:
        open_threshold: When set, an item whose best extension exceeds
            ``open_threshold × duration`` opens a new bin even though a fit
            exists (set to 0 to isolate long items aggressively; ``None``
            keeps the Any Fit property).
    """

    name = "usage-aware-fit"

    def __init__(self, open_threshold: float | None = None) -> None:
        super().__init__()
        if open_threshold is not None and open_threshold < 0:
            raise ValidationError(
                f"open_threshold must be >= 0 or None, got {open_threshold}"
            )
        self.open_threshold = open_threshold

    def describe(self) -> str:
        if self.open_threshold is None:
            return "usage-aware-fit"
        return f"usage-aware-fit(threshold={self.open_threshold:g})"

    def place(self, item: Item) -> int:
        t = item.arrival
        best: tuple[float, float, int] | None = None  # (extension, -level, index)
        target = None
        for b in self.open_bins_at(t):
            if not b.fits_at_arrival(item):
                continue
            extension = max(0.0, item.departure - b.close_time())
            key = (extension, -b.level_at(t), b.index)
            if best is None or key < best:
                best = key
                target = b
        if target is not None and self.open_threshold is not None:
            assert best is not None
            if best[0] > self.open_threshold * item.duration:
                target = None
        if target is None:
            target = self.open_bin()
        return self.commit(target, item)
