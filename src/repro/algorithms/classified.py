"""Shared machinery for classification-based online First Fit packers.

The paper's two online strategies (§5.2, §5.3) both classify items into
categories at arrival time and run First Fit *within each category* —
bins are never shared across categories.  :class:`ClassifiedFirstFit`
implements that skeleton; subclasses supply :meth:`category_of`.
"""

from __future__ import annotations

import abc

from ..core.bins import Bin
from ..core.items import Item
from .base import OnlinePacker

__all__ = ["ClassifiedFirstFit"]


class ClassifiedFirstFit(OnlinePacker):
    """Online First Fit applied separately within item categories.

    Bin indices stay globally unique (the packing's opening order across all
    categories), while each category only considers its own bins — exactly
    the model under which Theorems 4 and 5 are proved.
    """

    def __init__(self) -> None:
        super().__init__()
        self._category_bins: dict[object, list[Bin]] = {}

    def reset(self) -> None:
        super().reset()
        self._category_bins = {}

    @abc.abstractmethod
    def category_of(self, item: Item) -> object:
        """The (hashable) category key of ``item``, decided at its arrival.

        May use the item's departure time/duration — that is precisely the
        clairvoyant information this paper exploits.
        """

    def place(self, item: Item) -> int:
        key = self.category_of(item)
        bins = self._category_bins.setdefault(key, [])
        t = item.arrival
        for b in bins:  # opening order within the category = First Fit
            if b.is_open_at(t) and b.fits_at_arrival(item):
                return self.commit(b, item)
        b = self.open_bin()
        bins.append(b)
        return self.commit(b, item)

    def categories_used(self) -> list[object]:
        """Category keys that received at least one item (after a pack)."""
        return sorted(self._category_bins, key=repr)

    def category_bins(self) -> dict[object, list[Bin]]:
        """Bins per category, in opening order (after a pack).

        Exposed for the proof-instrumentation analyses (e.g. the Theorem 4
        stage decomposition needs each category's own bin sequence).
        """
        return {k: list(v) for k, v in self._category_bins.items()}
