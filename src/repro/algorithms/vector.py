"""First-class vector (multi-dimensional) packers — paper §6, promoted.

The paper's §6 sketches MinUsageTime DBP with ``d``-dimensional resource
demands (CPU/memory/network), the production case of the follow-up work on
Dynamic Vector Bin Packing.  This module makes that setting a first-class
citizen: the vector packers are ordinary :class:`~repro.algorithms.base.OnlinePacker`
subclasses registered in the packer registry (``dims=None`` capability — any
dimensionality, including the scalar ``d=1`` degenerate case), so they work
everywhere scalar packers do — batch :meth:`~VectorFirstFit.pack`, the
streaming :class:`~repro.engine.PackingSession`, the ``pack``/``serve``/
``sweep`` CLI, :func:`~repro.analysis.measured_ratio` and
:func:`~repro.analysis.run_sweep`.

**Degeneracy guarantee.**  Every vector packer at ``d=1`` produces
bit-identical placements to its scalar counterpart (``vector-first-fit`` ↔
``first-fit``, ``vector-classify-duration`` ↔ ``classify-duration``,
``vector-classify-departure`` ↔ ``classify-departure``): the category
functions are shared and the candidate scan uses the same order and the same
tolerance arithmetic.  Property tests enforce this.

**SoA feature flag.**  Each packer takes ``soa=True`` (or the
``REPRO_VECTOR_SOA`` environment variable) to route the fit-check hot loop
through the numpy struct-of-arrays core
(:class:`~repro.core.SoAFitChecker`): one vectorised mask over contiguous
``levels[dim, bin]`` arrays replaces per-bin per-dimension step-function
bisections.  The flag is parity-gated — SoA and object paths must produce
bit-identical placements (``benchmarks/bench_vector_fitcheck.py`` asserts
this on a 1M-item 3-resource trace while measuring the speedup).  Batch
:meth:`~VectorFirstFit.pack` with SoA enabled skips
:class:`~repro.core.Bin` objects entirely; streaming placement keeps bins
live (the session needs them for snapshots and results) and uses the SoA
core for the fit decision only.

The historical ``repro.extensions.multidim`` names (``VectorItem``,
``VectorBin``, ``VectorPacking``) remain importable as aliases of the core
types they grew into.
"""

from __future__ import annotations

import abc
import math
import os
from typing import Iterable

import numpy as np

from ..core.bins import Bin
from ..core.exceptions import ValidationError
from ..core.items import Item, ItemList
from ..core.packing import PackingResult
from ..core.soa import IntVector, SoAFitChecker
from ..core.stepfun import DEFAULT_TOL
from ..bounds.opt_bounds import vector_ceil_lower_bound, vector_demand_lower_bound
from .base import OnlinePacker, register_packer
from .classify_duration import duration_category

__all__ = [
    "VectorClassifiedFirstFit",
    "VectorFirstFit",
    "VectorClassifyByDuration",
    "VectorClassifyByDeparture",
    "VectorItem",
    "VectorBin",
    "VectorPacking",
    "vector_demand_lower_bound",
    "vector_ceil_lower_bound",
]

#: Environment variable enabling the SoA fit-check core by default.
SOA_ENV_VAR = "REPRO_VECTOR_SOA"

_TRUTHY = {"1", "true", "yes", "on"}


def _soa_default() -> bool:
    return os.environ.get(SOA_ENV_VAR, "").strip().lower() in _TRUTHY


#: Compaction floor: candidate lists shorter than this are never compacted.
_COMPACT_MIN = 64


class VectorClassifiedFirstFit(OnlinePacker):
    """Category-partitioned First Fit over ``d``-dimensional items.

    The skeleton shared by every vector packer: items are classified at
    arrival (:meth:`category_of`), and First Fit runs *within* each category
    — the same model as the scalar
    :class:`~repro.algorithms.ClassifiedFirstFit`, with the fit check
    requiring every resource dimension to fit simultaneously.

    Args:
        dims: Item dimensionality this packer expects.  ``None`` (default)
            infers it from the first item seen (re-inferred after each
            :meth:`reset`).
        soa: Route fit checks through the numpy SoA core
            (:class:`~repro.core.SoAFitChecker`).  ``None`` reads the
            ``REPRO_VECTOR_SOA`` environment variable.  Placements are
            bit-identical either way (parity-gated).
    """

    def __init__(self, dims: int | None = None, soa: bool | None = None) -> None:
        super().__init__()
        if dims is not None and (isinstance(dims, bool) or dims < 1):
            raise ValidationError(f"dims must be a positive integer, got {dims!r}")
        self._declared_dims = dims
        self.dims: int | None = dims
        self.soa = _soa_default() if soa is None else bool(soa)
        self._checker: SoAFitChecker | None = None
        self._category_bins: dict[object, list[Bin]] = {}
        self._category_slots: dict[object, IntVector] = {}
        self._compact_at: dict[object, int] = {}

    def reset(self) -> None:
        """Clear all state (and re-arm dimension inference) before a pack."""
        super().reset()
        self.dims = self._declared_dims
        self._checker = None
        self._category_bins = {}
        self._category_slots = {}
        self._compact_at = {}

    @abc.abstractmethod
    def category_of(self, item: Item) -> object:
        """The (hashable) category key of ``item``, decided at its arrival."""

    # -- dimensionality ---------------------------------------------------------

    def _resolve_dims(self, item: Item) -> int:
        dims = self.dims
        d = len(item.sizes)
        if dims is None:
            self.dims = dims = d
        elif d != dims:
            raise ValidationError(
                f"item {item.id} has {d} dimension(s); "
                f"packer {self.name!r} expects {dims}"
            )
        return dims

    # -- SoA plumbing -----------------------------------------------------------

    def _soa_checker(self, dims: int) -> SoAFitChecker:
        ck = self._checker
        if ck is None:
            ck = self._checker = SoAFitChecker(dims)
        return ck

    def _soa_slots(self, key: object) -> IntVector:
        slots = self._category_slots.get(key)
        if slots is None:
            slots = self._category_slots[key] = IntVector()
            self._compact_at[key] = _COMPACT_MIN
        return slots

    def _maybe_compact(self, key: object, slots: IntVector, t: float) -> None:
        if len(slots) >= self._compact_at[key]:
            assert self._checker is not None
            self._checker.compact(slots, t)
            self._compact_at[key] = max(_COMPACT_MIN, 2 * len(slots))

    def open_bin(self) -> Bin:
        """Open a fresh bin, mirrored into the SoA core when enabled."""
        b = super().open_bin()
        if self._checker is not None:
            self._checker.open_bin()
        return b

    def _note_commit(self, index: int, item: Item) -> None:
        """Sync the open-bin index, keeping SoA close times amend-exact."""
        super()._note_commit(index, item)
        ck = self._checker
        if ck is not None and index < ck.nbins:
            ck.set_close(index, self._close_times[index])

    def amend_last(self, bin_index: int, actual: Item) -> None:
        """Amend the last commitment in both the bin and the SoA core."""
        ck = self._checker
        if ck is not None:
            # The engine's contract: the amended item is the last one placed.
            ck.amend_last(
                np.asarray(actual.sizes, dtype=np.float64), actual.departure
            )
        super().amend_last(bin_index, actual)

    # -- placement --------------------------------------------------------------

    def place(self, item: Item) -> int:
        """First Fit within the item's category, over all dimensions."""
        dims = self._resolve_dims(item)
        t = item.arrival
        key = self.category_of(item)
        if self.soa:
            ck = self._soa_checker(dims)
            ck.advance(t)
            slots = self._soa_slots(key)
            sizes = np.asarray(item.sizes, dtype=np.float64)
            choice = ck.first_open_fit(sizes, t, slots.view())
            if choice < 0:
                b = self.open_bin()
                slots.append(b.index)
                ck.place(b.index, sizes, item.departure)
                self._maybe_compact(key, slots, t)
                return self.commit(b, item)
            ck.place(choice, sizes, item.departure)
            self._maybe_compact(key, slots, t)
            return self.commit(self._bins[choice], item)
        bins = self._category_bins.setdefault(key, [])
        # First Fit in opening order, lazily pruning bins that are closed at
        # the arrival frontier (once closed there, a bin never reopens: items
        # are committed in arrival order, so its close time is final).  This
        # keeps the scan O(open bins) instead of O(bins ever opened) without
        # changing any placement.
        kept = 0
        choice: Bin | None = None
        for b in bins:
            if not b.is_open_at(t):
                continue
            bins[kept] = b
            kept += 1
            if choice is None and b.fits_at_arrival(item):
                choice = b
        del bins[kept:]
        if choice is not None:
            return self.commit(choice, item)
        b = self.open_bin()
        bins.append(b)
        return self.commit(b, item)

    # -- batch packing ----------------------------------------------------------

    def pack(self, items: "ItemList | Iterable[Item]") -> PackingResult:
        """Pack all items; with SoA enabled, bins are never materialised.

        Accepts a plain iterable of items (normalised to an
        :class:`~repro.core.ItemList`) for convenience.  The SoA batch path
        runs the whole arrival-order loop on the contiguous level arrays and
        returns an assignment-only :class:`~repro.core.PackingResult`
        (placements are bit-identical to the object path).
        """
        if not isinstance(items, ItemList):
            items = ItemList(items)
        if not self.soa:
            return super().pack(items)
        self.reset()
        if self.dims is None:
            self.dims = items.dims
        dims = self.dims
        ck = self._soa_checker(dims)
        assignment: dict[int, int] = {}
        for item in items:  # ItemList iterates in arrival order
            if len(item.sizes) != dims:
                raise ValidationError(
                    f"item {item.id} has {len(item.sizes)} dimension(s); "
                    f"packer {self.name!r} expects {dims}"
                )
            t = item.arrival
            ck.advance(t)
            key = self.category_of(item)
            slots = self._soa_slots(key)
            sizes = np.asarray(item.sizes, dtype=np.float64)
            choice = ck.first_open_fit(sizes, t, slots.view())
            if choice < 0:
                choice = ck.open_bin()
                slots.append(choice)
            ck.place(choice, sizes, item.departure)
            assignment[item.id] = choice
            self._maybe_compact(key, slots, t)
        return PackingResult(items, assignment, algorithm=self.describe())


@register_packer("vector-first-fit", dims=None)
class VectorFirstFit(VectorClassifiedFirstFit):
    """First Fit over ``d``-dimensional items (single category).

    At ``d=1`` this is exactly the scalar ``first-fit`` packer: the single
    category makes the scan the plain earliest-opened-accommodating-bin rule.
    """

    name = "vector-first-fit"

    def category_of(self, item: Item) -> object:
        """Single shared category: plain First Fit."""
        return 0


@register_packer("vector-classify-duration", dims=None)
class VectorClassifyByDuration(VectorClassifiedFirstFit):
    """Classify-by-duration First Fit for vector items (paper §5.3 lifted).

    Duration classification reads only times, so it composes unchanged with
    the all-dimensions fit rule; categories use the same float-robust
    :func:`~repro.algorithms.duration_category` as the scalar packer.

    Args:
        alpha: Max/min duration ratio per category, must exceed 1.
        base: Base duration; ``None`` anchors to the first item seen
            (re-anchored after each :meth:`reset`).
        dims: Expected dimensionality (``None`` infers from the first item).
        soa: SoA fit-check flag (``None`` reads ``REPRO_VECTOR_SOA``).
    """

    name = "vector-classify-duration"

    def __init__(
        self,
        alpha: float,
        base: float | None = None,
        dims: int | None = None,
        soa: bool | None = None,
    ) -> None:
        super().__init__(dims=dims, soa=soa)
        if alpha <= 1:
            raise ValidationError(f"alpha must exceed 1, got {alpha}")
        self.alpha = alpha
        self._fixed_base = base
        self._base: float | None = base

    def describe(self) -> str:
        """Name plus the classification parameter."""
        return f"vector-classify-duration(alpha={self.alpha:g})"

    def reset(self) -> None:
        """Clear state and re-anchor the duration base."""
        super().reset()
        self._base = self._fixed_base

    def category_of(self, item: Item) -> int:
        """Geometric duration category, identical to the scalar packer."""
        if self._base is None:
            self._base = item.duration
        return duration_category(item.duration, self._base, self.alpha)


@register_packer("vector-classify-departure", dims=None)
class VectorClassifyByDeparture(VectorClassifiedFirstFit):
    """Classify-by-departure-time First Fit for vector items (§5.2 lifted).

    Departure windows read only times, so the strategy composes unchanged
    with the all-dimensions fit rule.

    Args:
        rho: Category width ρ > 0; category ``k`` holds items departing in
            ``(origin + (k-1)·ρ, origin + k·ρ]``.
        origin: Classification time origin; ``None`` anchors to the arrival
            of the first item seen (re-anchored after each :meth:`reset`).
        dims: Expected dimensionality (``None`` infers from the first item).
        soa: SoA fit-check flag (``None`` reads ``REPRO_VECTOR_SOA``).
    """

    name = "vector-classify-departure"

    def __init__(
        self,
        rho: float,
        origin: float | None = None,
        dims: int | None = None,
        soa: bool | None = None,
    ) -> None:
        super().__init__(dims=dims, soa=soa)
        if rho <= 0:
            raise ValidationError(f"rho must be positive, got {rho}")
        self.rho = rho
        self._fixed_origin = origin
        self._origin: float | None = origin

    def describe(self) -> str:
        """Name plus the classification parameter."""
        return f"vector-classify-departure(rho={self.rho:g})"

    def reset(self) -> None:
        """Clear state and re-anchor the classification origin."""
        super().reset()
        self._origin = self._fixed_origin

    def category_of(self, item: Item) -> int:
        """Departure-window category, identical to the scalar packer."""
        if self._origin is None:
            self._origin = item.arrival
        # Departure in (origin + (k-1)ρ, origin + kρ]  ⇒  k = ⌈(dep - origin)/ρ⌉,
        # with the same exact-boundary correction as the scalar packer.
        offset = item.departure - self._origin
        k = math.ceil(offset / self.rho)
        if (k - 1) * self.rho >= offset:
            k -= 1
        return k


# -- historical ``repro.extensions.multidim`` names --------------------------

#: A vector item *is* a core :class:`~repro.core.Item` now (``sizes`` became
#: the canonical field, with scalar ``size`` the d=1 accessor).
VectorItem = Item

#: A vector packing *is* a core :class:`~repro.core.PackingResult` now
#: (validation and the usage objective are dimension-generic).
VectorPacking = PackingResult


class VectorBin(Bin):
    """Historical multi-dimensional bin, now a thin :class:`~repro.core.Bin`.

    Kept for the old ``repro.extensions.multidim`` constructor signature
    ``VectorBin(index, dims, tol)``; new code should construct
    ``Bin(index, dims=...)`` directly.
    """

    def __init__(self, index: int, dims: int, tol: float = DEFAULT_TOL) -> None:
        super().__init__(index, tol=tol, dims=dims)
