"""First-class vector (multi-dimensional) packers — paper §6, promoted.

The paper's §6 sketches MinUsageTime DBP with ``d``-dimensional resource
demands (CPU/memory/network), the production case of the follow-up work on
Dynamic Vector Bin Packing.  This module makes that setting a first-class
citizen: the vector packers are ordinary :class:`~repro.algorithms.base.OnlinePacker`
subclasses registered in the packer registry (``dims=None`` capability — any
dimensionality, including the scalar ``d=1`` degenerate case), so they work
everywhere scalar packers do — batch :meth:`~VectorFirstFit.pack`, the
streaming :class:`~repro.engine.PackingSession`, the ``pack``/``serve``/
``sweep`` CLI, :func:`~repro.analysis.measured_ratio` and
:func:`~repro.analysis.run_sweep`.

**Degeneracy guarantee.**  Every vector packer at ``d=1`` produces
bit-identical placements to its scalar counterpart (``vector-first-fit`` ↔
``first-fit``, ``vector-classify-duration`` ↔ ``classify-duration``,
``vector-classify-departure`` ↔ ``classify-departure``): the category
functions are shared and the candidate scan uses the same order and the same
tolerance arithmetic.  Property tests enforce this.

**SoA feature flag.**  Each packer takes ``soa=True`` (or the
``REPRO_VECTOR_SOA`` environment variable) to route the fit-check hot loop
through the numpy struct-of-arrays core
(:class:`~repro.core.SoAFitChecker`): one vectorised mask over contiguous
``levels[dim, bin]`` arrays replaces per-bin per-dimension step-function
bisections.  The flag is parity-gated — SoA and object paths must produce
bit-identical placements (``benchmarks/bench_vector_fitcheck.py`` asserts
this on a 1M-item 3-resource trace while measuring the speedup).  Batch
:meth:`~VectorFirstFit.pack` with SoA enabled skips
:class:`~repro.core.Bin` objects entirely; streaming placement keeps bins
live (the session needs them for snapshots and results) and uses the SoA
core for the fit decision only.

The historical ``repro.extensions.multidim`` names (``VectorItem``,
``VectorBin``, ``VectorPacking``) remain importable as aliases of the core
types they grew into.
"""

from __future__ import annotations

import abc
import gc
import heapq
import math
import os
from typing import Iterable

import numpy as np

from ..core.batch import ArrivalBatch
from ..core.bins import Bin
from ..core.exceptions import ValidationError
from ..core.items import Item, ItemList
from ..core.packing import PackingResult
from ..core.soa import IntVector, SoAFitChecker
from ..core.stepfun import DEFAULT_TOL
from ..bounds.opt_bounds import vector_ceil_lower_bound, vector_demand_lower_bound
from .base import BatchPlacement, OnlinePacker, register_packer
from .classify_duration import duration_category

__all__ = [
    "VectorClassifiedFirstFit",
    "VectorFirstFit",
    "VectorClassifyByDuration",
    "VectorClassifyByDeparture",
    "VectorItem",
    "VectorBin",
    "VectorPacking",
    "vector_demand_lower_bound",
    "vector_ceil_lower_bound",
]

#: Environment variable enabling the SoA fit-check core by default.
SOA_ENV_VAR = "REPRO_VECTOR_SOA"

_TRUTHY = {"1", "true", "yes", "on"}


def _soa_default() -> bool:
    return os.environ.get(SOA_ENV_VAR, "").strip().lower() in _TRUTHY


#: Compaction floor: candidate lists shorter than this are never compacted.
_COMPACT_MIN = 64

_NEG_INF = float("-inf")


class VectorClassifiedFirstFit(OnlinePacker):
    """Category-partitioned First Fit over ``d``-dimensional items.

    The skeleton shared by every vector packer: items are classified at
    arrival (:meth:`category_of`), and First Fit runs *within* each category
    — the same model as the scalar
    :class:`~repro.algorithms.ClassifiedFirstFit`, with the fit check
    requiring every resource dimension to fit simultaneously.

    Args:
        dims: Item dimensionality this packer expects.  ``None`` (default)
            infers it from the first item seen (re-inferred after each
            :meth:`reset`).
        soa: Route fit checks through the numpy SoA core
            (:class:`~repro.core.SoAFitChecker`).  ``None`` reads the
            ``REPRO_VECTOR_SOA`` environment variable.  Placements are
            bit-identical either way (parity-gated).
    """

    def __init__(self, dims: int | None = None, soa: bool | None = None) -> None:
        super().__init__()
        if dims is not None and (isinstance(dims, bool) or dims < 1):
            raise ValidationError(f"dims must be a positive integer, got {dims!r}")
        self._declared_dims = dims
        self.dims: int | None = dims
        self.soa = _soa_default() if soa is None else bool(soa)
        self._checker: SoAFitChecker | None = None
        self._category_bins: dict[object, list[Bin]] = {}
        self._category_slots: dict[object, IntVector] = {}
        self._compact_at: dict[object, int] = {}
        self._pending: list[tuple[ArrivalBatch, np.ndarray]] = []

    def reset(self) -> None:
        """Clear all state (and re-arm dimension inference) before a pack."""
        super().reset()
        self.dims = self._declared_dims
        self._checker = None
        self._category_bins = {}
        self._category_slots = {}
        self._compact_at = {}
        self._pending = []

    @abc.abstractmethod
    def category_of(self, item: Item) -> object:
        """The (hashable) category key of ``item``, decided at its arrival."""

    def category_of_interval(self, arrival: float, departure: float) -> object:
        """The category key from the item's times alone (columnar hot path).

        The built-in vector packers classify by times only, so the batched
        :meth:`place_many` fast path can compute categories straight from the
        batch's arrival/departure arrays without materialising items.  A
        subclass whose :meth:`category_of` reads sizes or tags should leave
        this unimplemented — :meth:`place_many` then falls back to the scalar
        loop, which classifies through :meth:`category_of` as usual.
        """
        raise NotImplementedError

    # -- dimensionality ---------------------------------------------------------

    def _resolve_dims(self, item: Item) -> int:
        dims = self.dims
        d = len(item.sizes)
        if dims is None:
            self.dims = dims = d
        elif d != dims:
            raise ValidationError(
                f"item {item.id} has {d} dimension(s); "
                f"packer {self.name!r} expects {dims}"
            )
        return dims

    # -- SoA plumbing -----------------------------------------------------------

    def _soa_checker(self, dims: int) -> SoAFitChecker:
        ck = self._checker
        if ck is None:
            ck = self._checker = SoAFitChecker(dims)
        return ck

    def _soa_slots(self, key: object) -> IntVector:
        slots = self._category_slots.get(key)
        if slots is None:
            slots = self._category_slots[key] = IntVector()
            self._compact_at[key] = _COMPACT_MIN
        return slots

    def _maybe_compact(self, key: object, slots: IntVector, t: float) -> None:
        if len(slots) >= self._compact_at[key]:
            assert self._checker is not None
            self._checker.compact(slots, t)
            self._compact_at[key] = max(_COMPACT_MIN, 2 * len(slots))

    def open_bin(self) -> Bin:
        """Open a fresh bin, mirrored into the SoA core when enabled."""
        b = super().open_bin()
        if self._checker is not None:
            self._checker.open_bin()
        return b

    # -- deferred bin materialisation (batch hot path) --------------------------

    def _flush_pending(self) -> None:
        """Materialise the bins and placements deferred by :meth:`place_many`.

        The SoA batch path tracks bin state (levels, close times, retire
        heap) in arrays only; :class:`~repro.core.Bin` objects are built here,
        on the first access that actually needs them (results, snapshots,
        scalar placements).  Placements are replayed in submission order, so
        each bin's item sequence is exactly what the scalar path would have
        produced.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        bins = self._bins
        dims = self.dims or 1
        while len(bins) < len(self._close_times):
            bins.append(Bin(len(bins), dims=dims))
        for batch, indices in pending:
            idx = indices.tolist()
            for i, index in enumerate(idx):
                bins[index].place(batch.item(i), check=False)

    @property
    def bins(self) -> list[Bin]:
        """All bins ever opened, in opening order (flushes deferred state)."""
        self._flush_pending()
        return self._bins

    def retire_until(self, t: float) -> list[Bin]:
        """Retire closed bins, flushing deferred batch placements first."""
        if self._pending:
            self._flush_pending()
        return super().retire_until(t)

    def open_bins_at(self, t: float) -> list[Bin]:
        """Open bins at ``t``, flushing deferred batch placements first."""
        if self._pending:
            self._flush_pending()
        return super().open_bins_at(t)

    def _note_commit(self, index: int, item: Item) -> None:
        """Sync the open-bin index, keeping SoA close times amend-exact."""
        super()._note_commit(index, item)
        ck = self._checker
        if ck is not None and index < ck.nbins:
            ck.set_close(index, self._close_times[index])

    def amend_last(self, bin_index: int, actual: Item) -> None:
        """Amend the last commitment in both the bin and the SoA core."""
        if self._pending:
            self._flush_pending()
        ck = self._checker
        if ck is not None:
            # The engine's contract: the amended item is the last one placed.
            ck.amend_last(
                np.asarray(actual.sizes, dtype=np.float64), actual.departure
            )
        super().amend_last(bin_index, actual)

    # -- placement --------------------------------------------------------------

    def place(self, item: Item) -> int:
        """First Fit within the item's category, over all dimensions."""
        if self._pending:
            self._flush_pending()
        dims = self._resolve_dims(item)
        t = item.arrival
        key = self.category_of(item)
        if self.soa:
            ck = self._soa_checker(dims)
            ck.advance(t)
            slots = self._soa_slots(key)
            sizes = np.asarray(item.sizes, dtype=np.float64)
            choice = ck.first_open_fit(sizes, t, slots.view())
            if choice < 0:
                b = self.open_bin()
                slots.append(b.index)
                ck.place(b.index, sizes, item.departure)
                self._maybe_compact(key, slots, t)
                return self.commit(b, item)
            ck.place(choice, sizes, item.departure)
            self._maybe_compact(key, slots, t)
            return self.commit(self._bins[choice], item)
        bins = self._category_bins.setdefault(key, [])
        # First Fit in opening order, lazily pruning bins that are closed at
        # the arrival frontier (once closed there, a bin never reopens: items
        # are committed in arrival order, so its close time is final).  This
        # keeps the scan O(open bins) instead of O(bins ever opened) without
        # changing any placement.
        kept = 0
        choice: Bin | None = None
        for b in bins:
            if not b.is_open_at(t):
                continue
            bins[kept] = b
            kept += 1
            if choice is None and b.fits_at_arrival(item):
                choice = b
        del bins[kept:]
        if choice is not None:
            return self.commit(choice, item)
        b = self.open_bin()
        bins.append(b)
        return self.commit(b, item)

    def place_many(self, batch: ArrivalBatch) -> BatchPlacement:
        """Columnar batch placement on the SoA core, deferring bin objects.

        With SoA enabled and a times-only classifier
        (:meth:`category_of_interval`), the whole batch runs on contiguous
        arrays: fit checks and level updates go through
        :class:`~repro.core.SoAFitChecker`, close times and the retire heap
        are maintained directly, and :class:`~repro.core.Bin` objects are not
        built until something needs them (:meth:`_flush_pending`).  Placements
        are bit-identical to the scalar loop — same first-fit scan order, same
        tolerance arithmetic, same retire schedule.

        Falls back to the scalar-loop default when SoA is off or the
        classifier needs whole items.
        """
        n = len(batch)
        if not self.soa or n == 0:
            return super().place_many(batch)
        d = batch.dims
        dims = self.dims
        if dims is None:
            self.dims = dims = d
        elif d != dims:
            raise ValidationError(
                f"item {int(batch.ids[0])} has {d} dimension(s); "
                f"packer {self.name!r} expects {dims}"
            )
        # Everything below (the bulk tolist conversions included) runs with
        # collection paused: the batch allocates ~n containers while the
        # session's live placement records number in the millions, so each
        # generational pass triggered mid-batch costs milliseconds (same
        # guard as the columnar loaders).  Size rows are kept as *tuples* —
        # the collector untracks all-float tuples on its first visit, while
        # lists stay tracked forever and would make every future full
        # collection rescan one list per placed item.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            arrivals = batch.arrivals.tolist()
            departures = batch.departures.tolist()
            try:
                keys = [
                    self.category_of_interval(arrivals[i], departures[i])
                    for i in range(n)
                ]
            except NotImplementedError:
                return super().place_many(batch)
            ck = self._soa_checker(dims)
            # The whole loop runs on pure-Python mirrors (cursor + local
            # slot lists): at a handful of open bins per category, scalar
            # arithmetic with short-circuiting beats vectorised scans on
            # per-call overhead while staying bit-identical (Python floats
            # are IEEE float64).  The cursor's advance / first_open_fit /
            # open_bin / place bodies are inlined below with its state bound
            # as locals — at 1e6 items even one method call per item is
            # measurable (see BatchCursor docstring).
            cursor = ck.batch_cursor()
            clevels = cursor.levels
            lv0 = clevels[0]
            ccloses = cursor.closes
            cheap = cursor.heap
            rec_bin = cursor.rec_bin
            rec_sizes = cursor.rec_sizes
            rec_dep = cursor.rec_departure
            captol = cursor.captol
            one_dim = dims == 1
            rows = list(map(tuple, batch.sizes.tolist()))
            close_times = self._close_times
            heap = self._retire_heap
            open_set = self._open
            slots_of = self._category_slots
            compact_at = self._compact_at
            local_slots: dict[object, list[int]] = {}
            heappop, heappush = heapq.heappop, heapq.heappush
            indices: list[int] = [0] * n
            opens: list[int] = [0] * n
            retired = 0
            for i in range(n):
                t = arrivals[i]
                # Count-only retire: same heap discipline as ``retire_until`` but
                # without touching (possibly unmaterialised) Bin objects.
                while heap and heap[0][0] <= t:
                    close, index = heappop(heap)
                    if close != close_times[index]:
                        continue  # stale entry, close time has since moved
                    if index in open_set:
                        open_set.discard(index)
                        retired += 1
                # cursor.advance(t)
                while cheap and cheap[0][0] <= t:
                    departure, serial = heappop(cheap)
                    if departure != rec_dep[serial]:
                        continue  # stale: this placement's departure was amended
                    rec_dep[serial] = _NEG_INF  # consumed
                    index = rec_bin[serial]
                    sizes = rec_sizes[serial]
                    if one_dim:
                        lv0[index] -= sizes[0]
                    else:
                        for d in range(dims):
                            clevels[d][index] -= sizes[d]
                key = keys[i]
                slots = local_slots.get(key)
                if slots is None:
                    vec = slots_of.get(key)
                    if vec is None:
                        slots_of[key] = IntVector()
                        compact_at[key] = _COMPACT_MIN
                        slots = local_slots[key] = []
                    else:
                        slots = local_slots[key] = vec.view().tolist()
                row = rows[i]
                dep = departures[i]
                # cursor.first_open_fit(row, t, slots)
                choice = -1
                if one_dim:
                    s0 = row[0]
                    for b in slots:
                        if ccloses[b] > t and lv0[b] + s0 <= captol:
                            choice = b
                            break
                else:
                    for b in slots:
                        if ccloses[b] > t:
                            for d in range(dims):
                                if clevels[d][b] + row[d] > captol:
                                    break
                            else:
                                choice = b
                                break
                if choice < 0:
                    # cursor.open_bin()
                    for lv in clevels:
                        lv.append(0.0)
                    ccloses.append(_NEG_INF)
                    choice = len(ccloses) - 1
                    slots.append(choice)
                    close_times.append(_NEG_INF)
                # cursor.place(choice, row, dep)
                if one_dim:
                    lv0[choice] += row[0]
                else:
                    for d in range(dims):
                        clevels[d][choice] += row[d]
                if dep > ccloses[choice]:
                    ccloses[choice] = dep
                serial = len(rec_bin)
                rec_bin.append(choice)
                rec_sizes.append(row)
                rec_dep.append(dep)
                heappush(cheap, (dep, serial))
                if dep > close_times[choice]:
                    close_times[choice] = dep
                    heappush(heap, (dep, choice))
                open_set.add(choice)
                indices[i] = choice
                opens[i] = len(open_set)
                if len(slots) >= compact_at[key]:
                    # cursor.compact(slots, t)
                    slots = local_slots[key] = [b for b in slots if ccloses[b] > t]
                    compact_at[key] = max(_COMPACT_MIN, 2 * len(slots))
        finally:
            if gc_was_enabled:
                gc.enable()
        cursor.clock = arrivals[-1]
        cursor.flush()
        for key, slots in local_slots.items():
            slots_of[key].replace(np.asarray(slots, dtype=np.int64))
        if arrivals[-1] > self._frontier:
            self._frontier = arrivals[-1]
        out = np.asarray(indices, dtype=np.int64)
        self._pending.append((batch, out))
        return BatchPlacement(
            indices=out,
            open_bins=np.asarray(opens, dtype=np.int64),
            bins_retired=retired,
        )

    # -- batch packing ----------------------------------------------------------

    def pack(self, items: "ItemList | Iterable[Item]") -> PackingResult:
        """Pack all items; with SoA enabled, bins are never materialised.

        Accepts a plain iterable of items (normalised to an
        :class:`~repro.core.ItemList`) for convenience.  The SoA batch path
        runs the whole arrival-order loop on the contiguous level arrays and
        returns an assignment-only :class:`~repro.core.PackingResult`
        (placements are bit-identical to the object path).
        """
        if not isinstance(items, ItemList):
            items = ItemList(items)
        if not self.soa:
            return super().pack(items)
        self.reset()
        if self.dims is None:
            self.dims = items.dims
        dims = self.dims
        ck = self._soa_checker(dims)
        assignment: dict[int, int] = {}
        for item in items:  # ItemList iterates in arrival order
            if len(item.sizes) != dims:
                raise ValidationError(
                    f"item {item.id} has {len(item.sizes)} dimension(s); "
                    f"packer {self.name!r} expects {dims}"
                )
            t = item.arrival
            ck.advance(t)
            key = self.category_of(item)
            slots = self._soa_slots(key)
            sizes = np.asarray(item.sizes, dtype=np.float64)
            choice = ck.first_open_fit(sizes, t, slots.view())
            if choice < 0:
                choice = ck.open_bin()
                slots.append(choice)
            ck.place(choice, sizes, item.departure)
            assignment[item.id] = choice
            self._maybe_compact(key, slots, t)
        return PackingResult(items, assignment, algorithm=self.describe())


@register_packer("vector-first-fit", dims=None)
class VectorFirstFit(VectorClassifiedFirstFit):
    """First Fit over ``d``-dimensional items (single category).

    At ``d=1`` this is exactly the scalar ``first-fit`` packer: the single
    category makes the scan the plain earliest-opened-accommodating-bin rule.
    """

    name = "vector-first-fit"

    def category_of(self, item: Item) -> object:
        """Single shared category: plain First Fit."""
        return 0

    def category_of_interval(self, arrival: float, departure: float) -> object:
        """Single shared category, regardless of times."""
        return 0


@register_packer("vector-classify-duration", dims=None)
class VectorClassifyByDuration(VectorClassifiedFirstFit):
    """Classify-by-duration First Fit for vector items (paper §5.3 lifted).

    Duration classification reads only times, so it composes unchanged with
    the all-dimensions fit rule; categories use the same float-robust
    :func:`~repro.algorithms.duration_category` as the scalar packer.

    Args:
        alpha: Max/min duration ratio per category, must exceed 1.
        base: Base duration; ``None`` anchors to the first item seen
            (re-anchored after each :meth:`reset`).
        dims: Expected dimensionality (``None`` infers from the first item).
        soa: SoA fit-check flag (``None`` reads ``REPRO_VECTOR_SOA``).
    """

    name = "vector-classify-duration"

    def __init__(
        self,
        alpha: float,
        base: float | None = None,
        dims: int | None = None,
        soa: bool | None = None,
    ) -> None:
        super().__init__(dims=dims, soa=soa)
        if alpha <= 1:
            raise ValidationError(f"alpha must exceed 1, got {alpha}")
        self.alpha = alpha
        self._fixed_base = base
        self._base: float | None = base

    def describe(self) -> str:
        """Name plus the classification parameter."""
        return f"vector-classify-duration(alpha={self.alpha:g})"

    def reset(self) -> None:
        """Clear state and re-anchor the duration base."""
        super().reset()
        self._base = self._fixed_base

    def category_of(self, item: Item) -> int:
        """Geometric duration category, identical to the scalar packer."""
        return self.category_of_interval(item.arrival, item.departure)

    def category_of_interval(self, arrival: float, departure: float) -> int:
        """Duration category from the raw times (columnar hot path)."""
        duration = departure - arrival
        if self._base is None:
            self._base = duration
        return duration_category(duration, self._base, self.alpha)


@register_packer("vector-classify-departure", dims=None)
class VectorClassifyByDeparture(VectorClassifiedFirstFit):
    """Classify-by-departure-time First Fit for vector items (§5.2 lifted).

    Departure windows read only times, so the strategy composes unchanged
    with the all-dimensions fit rule.

    Args:
        rho: Category width ρ > 0; category ``k`` holds items departing in
            ``(origin + (k-1)·ρ, origin + k·ρ]``.
        origin: Classification time origin; ``None`` anchors to the arrival
            of the first item seen (re-anchored after each :meth:`reset`).
        dims: Expected dimensionality (``None`` infers from the first item).
        soa: SoA fit-check flag (``None`` reads ``REPRO_VECTOR_SOA``).
    """

    name = "vector-classify-departure"

    def __init__(
        self,
        rho: float,
        origin: float | None = None,
        dims: int | None = None,
        soa: bool | None = None,
    ) -> None:
        super().__init__(dims=dims, soa=soa)
        if rho <= 0:
            raise ValidationError(f"rho must be positive, got {rho}")
        self.rho = rho
        self._fixed_origin = origin
        self._origin: float | None = origin

    def describe(self) -> str:
        """Name plus the classification parameter."""
        return f"vector-classify-departure(rho={self.rho:g})"

    def reset(self) -> None:
        """Clear state and re-anchor the classification origin."""
        super().reset()
        self._origin = self._fixed_origin

    def category_of(self, item: Item) -> int:
        """Departure-window category, identical to the scalar packer."""
        return self.category_of_interval(item.arrival, item.departure)

    def category_of_interval(self, arrival: float, departure: float) -> int:
        """Departure-window category from the raw times (columnar hot path)."""
        if self._origin is None:
            self._origin = arrival
        # Departure in (origin + (k-1)ρ, origin + kρ]  ⇒  k = ⌈(dep - origin)/ρ⌉,
        # with the same exact-boundary correction as the scalar packer.
        offset = departure - self._origin
        k = math.ceil(offset / self.rho)
        if (k - 1) * self.rho >= offset:
            k -= 1
        return k


# -- historical ``repro.extensions.multidim`` names --------------------------

#: A vector item *is* a core :class:`~repro.core.Item` now (``sizes`` became
#: the canonical field, with scalar ``size`` the d=1 accessor).
VectorItem = Item

#: A vector packing *is* a core :class:`~repro.core.PackingResult` now
#: (validation and the usage objective are dimension-generic).
VectorPacking = PackingResult


class VectorBin(Bin):
    """Historical multi-dimensional bin, now a thin :class:`~repro.core.Bin`.

    Kept for the old ``repro.extensions.multidim`` constructor signature
    ``VectorBin(index, dims, tol)``; new code should construct
    ``Bin(index, dims=...)`` directly.
    """

    def __init__(self, index: int, dims: int, tol: float = DEFAULT_TOL) -> None:
        super().__init__(index, tol=tol, dims=dims)
