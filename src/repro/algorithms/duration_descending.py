"""Duration Descending First Fit — offline 5-approximation (paper §4.1, Thm 1).

Sort all items by duration, longest first, then place each item by the first
fit rule: into the lowest-indexed already-opened bin that can accommodate it
*throughout its duration*, opening a new bin otherwise.  Because items are
inserted out of arrival order, the fit check must consider the bin's full
committed level profile over the item's interval (``Bin.fits``), not just the
level at one instant.

Theorem 1 proves total usage < 4·d(R) + span(R) ≤ 5·OPT_total(R); the strict
intermediate inequality is asserted empirically by the property tests.
"""

from __future__ import annotations

from ..core.bins import Bin
from ..core.items import ItemList
from .base import OfflinePacker, register_packer

__all__ = ["DurationDescendingFirstFit"]


@register_packer("duration-descending-first-fit")
class DurationDescendingFirstFit(OfflinePacker):
    """Offline First Fit in descending duration order.

    Ties in duration break by arrival time then id, making the packing
    deterministic (the approximation guarantee holds for any tie-break).
    """

    name = "duration-descending-first-fit"

    def _assign(self, items: ItemList) -> dict[int, int]:
        order = sorted(items, key=lambda r: (-r.duration, r.arrival, r.id))
        bins: list[Bin] = []
        assignment: dict[int, int] = {}
        for item in order:
            placed = False
            for b in bins:
                if b.fits(item):
                    b.place(item, check=False)
                    assignment[item.id] = b.index
                    placed = True
                    break
            if not placed:
                b = Bin(len(bins))
                bins.append(b)
                b.place(item, check=False)
                assignment[item.id] = b.index
        return assignment
