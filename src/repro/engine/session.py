"""The streaming packing engine: a persistent session around an online packer.

:class:`PackingSession` is the incremental counterpart of the batch
``packer.pack(items)`` call.  A long-running scheduler submits jobs one at a
time as they arrive (``session.submit(item)``), advances the wall clock
between arrivals (``session.advance(t)``), inspects live state
(``session.snapshot()``, ``session.stats``) and can materialise the packing
so far at any point (``session.result()``).

The session reuses the packer's indexed bin pool (the lazy close-time heap of
:class:`~repro.algorithms.OnlinePacker`) and keeps its own
:class:`~repro.core.EventHeap` of pending departures, so each event costs
O(log n) instead of a rescan of every bin ever opened.  Streaming placements
are **identical** to batch packing: for every registered online packer the
session produces the same assignment and usage as ``packer.pack`` on the same
workload (enforced by the parity tests in ``tests/test_engine.py``).

Noisy clairvoyance (paper §6) is first-class: ``submit(item,
predicted_departure=...)`` shows the packer an item with the predicted
departure, then amends the committed placement back to the actual interval,
so bins always track the occupancy a real system would observe.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..algorithms.base import OnlinePacker, get_packer
from ..core.batch import ArrivalBatch
from ..core.bins import Bin
from ..core.events import Event, EventHeap, EventKind
from ..core.exceptions import ValidationError
from ..core.intervals import Interval
from ..core.items import Item, ItemList
from ..core.packing import PackingResult
from ..obs import TelemetryRegistry, enabled as _telemetry_enabled
from .stats import EngineStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultPolicy

__all__ = ["PackingSession", "EngineSnapshot", "clamp_prediction"]

_NEG_INF = float("-inf")
_perf = time.perf_counter

#: Per-event timing is exact for the first ``_TIMING_EXACT`` events of each
#: kind, then samples one event in ``_TIMING_STRIDE`` and scales the reading,
#: so ``submit_seconds``/``advance_seconds`` stay statistically faithful while
#: the clock reads drop out of the steady-state hot path almost entirely.
_TIMING_EXACT = 64
_TIMING_STRIDE = 8


def clamp_prediction(item: Item, predicted: float) -> float:
    """Sanitise a predicted departure for ``item``.

    Predictions are clamped to be strictly after the arrival — a job is never
    predicted to have already finished the moment it arrives.

    Raises:
        ValidationError: if ``predicted`` is NaN.
    """
    predicted = float(predicted)
    if not predicted == predicted:  # NaN guard
        raise ValidationError(f"estimator returned NaN for item {item.id}")
    return max(predicted, item.arrival + 1e-12 * max(1.0, abs(item.arrival)))


@dataclass(frozen=True, slots=True)
class EngineSnapshot:
    """Point-in-time view of a running :class:`PackingSession`.

    Attributes:
        time: The session clock (max of submitted arrivals and advances).
        items_submitted: Items accepted so far.
        active_items: Items submitted whose departure has not been processed.
        open_bins: Bins currently holding at least one active item.
        bins_opened: Bins ever opened.
        usage_time: Total bin usage accrued by the packing so far.
    """

    time: float
    items_submitted: int
    active_items: int
    open_bins: int
    bins_opened: int
    usage_time: float


class PackingSession:
    """A persistent, incremental packing run over one online packer.

    Args:
        packer: An :class:`~repro.algorithms.OnlinePacker` instance, or a
            registered packer name (resolved through
            :func:`~repro.algorithms.get_packer`, so keyword arguments are
            validated against the packer's declared parameters).
        algorithm: Override for the result's algorithm label.
        registry: Optional shared :class:`~repro.obs.TelemetryRegistry` the
            session's :class:`EngineStats` cells are interned in; ``None``
            gives the stats a private registry.
        fault_policy: Optional :class:`~repro.resilience.FaultPolicy`
            hardening :meth:`submit` against out-of-order arrivals and
            duplicate ids.  Without one (or in ``strict`` mode) such events
            raise, exactly as before; ``skip`` drops the offending item
            (``submit`` returns ``-1``); ``clamp`` repairs an out-of-order
            arrival to the current session clock (duplicates are always
            dropped — there is no certified repair).  Absorbed faults count
            against the policy's error budget and its ``resilience.*``
            telemetry.
        **kwargs: Constructor parameters when ``packer`` is a name.

    Raises:
        TypeError: if ``packer`` is an offline packer (or not a packer), or
            if kwargs are passed alongside a packer instance.
        KeyError / ValueError: propagated from :func:`get_packer` for unknown
            names or invalid parameters.
    """

    def __init__(
        self,
        packer: OnlinePacker | str,
        *,
        algorithm: str | None = None,
        registry: TelemetryRegistry | None = None,
        fault_policy: "FaultPolicy | None" = None,
        **kwargs: object,
    ) -> None:
        if isinstance(packer, str):
            resolved = get_packer(packer, **kwargs)
        else:
            if kwargs:
                raise TypeError(
                    "packer parameters are only accepted with a packer name, "
                    f"not a ready instance: {sorted(kwargs)}"
                )
            resolved = packer
        if not isinstance(resolved, OnlinePacker):
            raise TypeError(
                f"PackingSession needs an OnlinePacker, got {type(resolved).__name__}; "
                "offline packers cannot stream"
            )
        self._packer = resolved
        self._packer.reset()
        self._algorithm = algorithm
        self._departures = EventHeap()
        self._dep_times: list[float] = []
        self._items: list[Item] = []
        self._pending_items: list[ArrivalBatch] = []
        self._ids: set[int] = set()
        self._clock = _NEG_INF
        self._active = 0
        self.fault_policy = fault_policy
        self.stats = EngineStats(registry)
        if fault_policy is not None:
            if fault_policy.registry is None:
                # Faults absorbed on behalf of this session surface in its
                # telemetry, not nowhere.  Remember that *we* bound it, so a
                # later session cannot silently misattribute its faults here.
                fault_policy.registry = self.stats.registry
                fault_policy._session_bound = True
            elif (
                getattr(fault_policy, "_session_bound", False)
                and fault_policy.registry is not self.stats.registry
            ):
                raise ValidationError(
                    "fault policy is already bound to another session's "
                    "telemetry registry; create one FaultPolicy per session, "
                    "or set its registry explicitly to share telemetry"
                )
        # Hot-path timing writes straight to the interned timer cells; the
        # property round trip through EngineStats costs ~3x more per event.
        self._submit_timer = self.stats.registry.timer("engine.submit_seconds")
        self._advance_timer = self.stats.registry.timer("engine.advance_seconds")
        self._submit_hist = self.stats.submit_latency
        self._advance_hist = self.stats.advance_latency
        self._submit_tick = 0
        self._advance_tick = 0

    # -- introspection -------------------------------------------------------

    @property
    def packer(self) -> OnlinePacker:
        """The driven packer (its bins are live — do not mutate)."""
        return self._packer

    @property
    def clock(self) -> float:
        """Current session time (``-inf`` before the first event)."""
        return self._clock

    def open_bins(self) -> list[Bin]:
        """Bins holding at least one active item right now."""
        return self._packer.open_bins_at(self._clock)

    def snapshot(self) -> EngineSnapshot:
        """A consistent point-in-time view (cheap: O(open bins))."""
        return EngineSnapshot(
            time=self._clock,
            items_submitted=self.stats.items_submitted,
            active_items=self._active,
            open_bins=len(self.open_bins()),
            bins_opened=len(self._packer.bins),
            usage_time=sum(b.usage_time() for b in self._packer.bins),
        )

    # -- the streaming API ---------------------------------------------------

    def submit(self, item: Item, predicted_departure: float | None = None) -> int:
        """Submit one arriving item; returns the bin index it was placed in.

        Items must be submitted in arrival order (the online model).  When
        ``predicted_departure`` differs from the item's actual departure, the
        packer decides on the prediction and the committed placement is then
        amended to the actual interval (noisy clairvoyance).

        With a non-strict ``fault_policy``, out-of-order and duplicate
        submissions are absorbed instead of raising: the item is dropped and
        ``-1`` returned, or — ``clamp`` mode, out-of-order only — its arrival
        is repaired to the session clock and placement proceeds.

        Raises:
            ValidationError: on out-of-order arrivals, duplicate item ids, or
                a NaN prediction (strict mode / no fault policy).
        """
        tick = self._submit_tick
        self._submit_tick = tick + 1
        timed = (
            tick < _TIMING_EXACT or not tick % _TIMING_STRIDE
        ) and _telemetry_enabled()
        t0 = _perf() if timed else 0.0
        policy = self.fault_policy
        if item.arrival < self._clock:
            exc = ValidationError(
                f"item {item.id} arrives at {item.arrival}, before the session "
                f"clock {self._clock}; submissions must be in arrival order"
            )
            if policy is not None and policy.wants_clamp:
                policy.absorb("out_of_order", exc, action="clamp")
                arrival = self._clock
                departure = item.departure
                if departure <= arrival:
                    departure = arrival + 1e-12 * max(1.0, abs(arrival))
                item = Item(item.id, item.sizes, Interval(arrival, departure), dict(item.tags))
            else:
                if policy is None:
                    raise exc
                policy.absorb("out_of_order", exc, action="drop")
                return -1
        if item.id in self._ids:
            exc = ValidationError(f"duplicate item id {item.id}")
            if policy is None:
                raise exc
            # No certified repair for a duplicate: clamp mode drops it too.
            policy.absorb("duplicate_id", exc, action="drop")
            return -1
        self._drain_departures(item.arrival)
        self._clock = item.arrival

        if predicted_departure is None:
            decision_item = item
        else:
            pred = clamp_prediction(item, predicted_departure)
            decision_item = item if pred == item.departure else item.with_departure(pred)
        index = self._packer.place(decision_item)
        self._packer._note_commit(index, decision_item)
        if decision_item is not item:
            self._packer.amend_last(index, item)

        self._ids.add(item.id)
        self._items.append(item)
        self._active += 1
        self._departures.push(Event(item.departure, EventKind.DEPARTURE, item))

        stats = self.stats
        stats.items_submitted += 1
        stats.bins_opened = len(self._packer.bins)
        if self._active > stats.peak_active_items:
            stats.peak_active_items = self._active
        open_now = len(self._packer.open_bins_at(item.arrival))
        if open_now > stats.peak_open_bins:
            stats.peak_open_bins = open_now
        if timed:
            delta = _perf() - t0
            self._submit_timer.seconds += (
                delta if tick < _TIMING_EXACT else delta * _TIMING_STRIDE
            )
            self._submit_hist.observe(delta)  # tail buckets want raw, unscaled deltas
        return index

    def submit_many(
        self, arrivals: "ArrivalBatch | Iterable[Item]"
    ) -> np.ndarray:
        """Submit a whole batch of arrivals; returns per-item bin indices.

        The columnar counterpart of calling :meth:`submit` in a loop: the
        batch's clock, fault and telemetry bookkeeping is amortised into a
        handful of vectorised reductions, and placement goes through the
        packer's :meth:`~repro.algorithms.OnlinePacker.place_many` (for the
        ``vector-*`` packers with SoA enabled, an array-at-a-time loop that
        never materialises :class:`~repro.core.Item` objects).  Placements,
        deterministic :class:`~repro.engine.EngineStats` fields and snapshots
        are bit-identical to the scalar loop — asserted for every registered
        online packer by ``tests/test_engine.py`` and
        ``benchmarks/bench_columnar.py``.

        The fast path requires a *well-formed* batch: arrivals non-decreasing
        from the session clock and ids fresh and unique.  Anything else —
        out-of-order rows, duplicate ids — falls back to the scalar
        :meth:`submit` loop so the :class:`~repro.resilience.FaultPolicy`
        semantics (per-item ``-1`` drop markers, clamp repairs, strict
        raises) are exactly preserved.  Predictions are not batched; use
        :meth:`submit` for noisy-clairvoyance submissions.

        Args:
            arrivals: An :class:`~repro.core.ArrivalBatch`, or an iterable of
                items (converted, at per-item cost).

        Returns:
            ``(n,)`` int64 array: the bin index per row, ``-1`` for rows
            dropped by a non-strict fault policy.

        Raises:
            ValidationError: whatever the scalar loop would raise (strict
                mode faults), after committing the rows preceding the fault.
        """
        batch = (
            arrivals
            if isinstance(arrivals, ArrivalBatch)
            else ArrivalBatch.from_items(arrivals)
        )
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        arr = batch.arrivals
        if (
            float(arr[0]) < self._clock
            or (n > 1 and not bool((arr[1:] >= arr[:-1]).all()))
            or len(np.unique(batch.ids)) != n
            or not self._ids.isdisjoint(batch.ids.tolist())
        ):
            return self._submit_fallback(batch)
        timed = _telemetry_enabled()
        t0 = _perf() if timed else 0.0
        last = float(arr[-1])
        dep = batch.departures
        # Departures from *before* this batch that fall due inside it.
        due_prior = [event.time for event in self._departures.pop_until(last)]
        dep_times = self._dep_times
        while dep_times and dep_times[0] <= last:
            due_prior.append(heapq.heappop(dep_times))
        prior_sorted = np.sort(np.asarray(due_prior, dtype=np.float64))
        dep_sorted = np.sort(dep)
        # Active items after each placement: the scalar loop drains every
        # departure due by arr[i] before counting item i in.  A departed
        # batch row j has dep[j] <= arr[i] ⇒ arr[j] < arr[i] ⇒ j < i (rows
        # are non-decreasing), so counting over the whole batch is exact.
        drained_prior = np.searchsorted(prior_sorted, arr, side="right")
        drained_intra = np.searchsorted(dep_sorted, arr, side="right")
        active = self._active + np.arange(1, n + 1) - drained_prior - drained_intra

        placement = self._packer.place_many(batch)

        future = dep[dep > last]
        for d in future.tolist():
            heapq.heappush(dep_times, d)
        intra_due = n - len(future)

        stats = self.stats
        stats.items_submitted += n
        stats.departures_processed += len(due_prior) + intra_due
        stats.bins_retired += placement.bins_retired
        stats.bins_opened = self._packer.bin_count()
        peak_active = int(active.max())
        if peak_active > stats.peak_active_items:
            stats.peak_active_items = peak_active
        peak_open = int(placement.open_bins.max())
        if peak_open > stats.peak_open_bins:
            stats.peak_open_bins = peak_open

        self._active = int(active[-1])
        self._ids.update(batch.ids.tolist())
        self._pending_items.append(batch)
        self._clock = last
        if timed:
            # One batch-level observation (per-item timing is what the batch
            # API amortises away); the timer still integrates total seconds.
            delta = _perf() - t0
            self._submit_timer.seconds += delta
            self._submit_hist.observe(delta)
        return placement.indices

    def _submit_fallback(self, batch: ArrivalBatch) -> np.ndarray:
        """Scalar-loop batch submission: exact :meth:`submit` semantics."""
        indices = np.empty(len(batch), dtype=np.int64)
        for i in range(len(batch)):
            indices[i] = self.submit(batch.item(i))
        return indices

    def advance(self, t: float) -> list[Bin]:
        """Advance the session clock to ``t``; returns newly retired bins.

        Processes every pending departure due by ``t`` (half-open semantics:
        an item departing *at* ``t`` is gone at ``t``) and retires bins whose
        items have all departed.

        Raises:
            ValidationError: if ``t`` is before the current clock.
        """
        tick = self._advance_tick
        self._advance_tick = tick + 1
        timed = (
            tick < _TIMING_EXACT or not tick % _TIMING_STRIDE
        ) and _telemetry_enabled()
        t0 = _perf() if timed else 0.0
        if t < self._clock:
            raise ValidationError(
                f"cannot advance backwards: clock is {self._clock}, got {t}"
            )
        retired = self._drain_departures(t)
        self._clock = t
        self.stats.advances += 1
        if timed:
            delta = _perf() - t0
            self._advance_timer.seconds += (
                delta if tick < _TIMING_EXACT else delta * _TIMING_STRIDE
            )
            self._advance_hist.observe(delta)
        return retired

    def _drain_departures(self, t: float) -> list[Bin]:
        """Process departures due by ``t``; returns the bins this retires."""
        for _event in self._departures.pop_until(t):
            self._active -= 1
            self.stats.departures_processed += 1
        # Departures queued by the batch path (plain floats, no Event objects).
        dep_times = self._dep_times
        while dep_times and dep_times[0] <= t:
            heapq.heappop(dep_times)
            self._active -= 1
            self.stats.departures_processed += 1
        retired = self._packer.retire_until(t)
        self.stats.bins_retired += len(retired)
        return retired

    # -- finishing -----------------------------------------------------------

    def _materialize_items(self) -> None:
        """Fold batch-submitted arrivals into the item list (lazy, ordered-safe).

        ``ItemList`` sorts by (arrival, id), so interleaved scalar and batch
        submissions materialise to the same list regardless of flush timing.
        """
        if self._pending_items:
            for batch in self._pending_items:
                self._items.extend(batch.to_items())
            self._pending_items = []

    def result(self) -> PackingResult:
        """The packing of everything submitted so far.

        Does not close the session — more items may still be submitted; each
        call builds a fresh :class:`~repro.core.PackingResult` from the live
        bins (actual intervals, post-amendment).
        """
        self._materialize_items()
        return PackingResult.from_bins(
            self._packer.bins,
            ItemList(self._items),
            algorithm=self._algorithm or self._packer.describe(),
        )
