"""Streaming packing engine: persistent sessions over online packers.

See :class:`PackingSession` for the submit/advance/snapshot/result API and
``docs/ENGINE.md`` for the design notes (indexed bins, incremental caches,
batch/stream parity guarantees).
"""

from .session import EngineSnapshot, PackingSession, clamp_prediction
from .stats import EngineStats

__all__ = ["PackingSession", "EngineSnapshot", "EngineStats", "clamp_prediction"]
