"""Counters and timers of the streaming packing engine."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineStats"]


@dataclass(slots=True)
class EngineStats:
    """Mutable run counters of one :class:`~repro.engine.PackingSession`.

    All counters start at zero and only the owning session writes them;
    read them at any point (``session.stats``) for live instrumentation.

    Attributes:
        items_submitted: Items accepted by ``submit`` so far.
        bins_opened: Bins the packer has opened so far.
        bins_retired: Bins retired from the open index (all items departed).
        departures_processed: Departure events drained from the event heap.
        advances: Explicit ``advance`` calls.
        peak_open_bins: Maximum simultaneously open bins observed.
        peak_active_items: Maximum simultaneously active items observed.
        submit_seconds: Wall-clock time spent inside ``submit``.
        advance_seconds: Wall-clock time spent inside ``advance``.
    """

    items_submitted: int = 0
    bins_opened: int = 0
    bins_retired: int = 0
    departures_processed: int = 0
    advances: int = 0
    peak_open_bins: int = 0
    peak_active_items: int = 0
    submit_seconds: float = field(default=0.0)
    advance_seconds: float = field(default=0.0)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabulation and JSON reports."""
        return {
            "items_submitted": self.items_submitted,
            "bins_opened": self.bins_opened,
            "bins_retired": self.bins_retired,
            "departures_processed": self.departures_processed,
            "advances": self.advances,
            "peak_open_bins": self.peak_open_bins,
            "peak_active_items": self.peak_active_items,
            "submit_seconds": self.submit_seconds,
            "advance_seconds": self.advance_seconds,
        }
