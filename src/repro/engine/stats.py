"""Counters and timers of the streaming packing engine.

Since the telemetry refactor, :class:`EngineStats` is a thin view over a
:class:`~repro.obs.TelemetryRegistry`: every attribute reads and writes an
interned metric cell (``engine.items_submitted``, ``engine.submit_seconds``,
…), so a session's counters appear in the same export as the adversary's and
the CLI's without any ad-hoc dict stitching.  The public attribute API is
unchanged — ``session.stats.items_submitted`` still reads and ``+=`` still
writes — and :meth:`EngineStats.as_dict` produces the exact legacy shape.
"""

from __future__ import annotations

from typing import Mapping

from ..obs import Histogram, TelemetryRegistry

__all__ = ["EngineStats"]

#: Monotonic event counts (``Counter`` cells).
_COUNTER_FIELDS = (
    "items_submitted",
    "bins_retired",
    "departures_processed",
    "advances",
)
#: Point-in-time values (``Gauge`` cells, max-merged).
_GAUGE_FIELDS = ("bins_opened", "peak_open_bins", "peak_active_items")
#: Wall-clock accumulators (``Timer`` cells).
_TIMER_FIELDS = ("submit_seconds", "advance_seconds")

FIELDS = _COUNTER_FIELDS + _GAUGE_FIELDS + _TIMER_FIELDS

#: Per-event latency distributions (``Histogram`` cells) — recorded by the
#: session alongside the sampled timers, but *not* part of the legacy
#: :meth:`EngineStats.as_dict` shape (read them via the properties below or
#: the registry export).
_HISTOGRAM_FIELDS = ("submit_latency", "advance_latency")


class EngineStats:
    """Mutable run counters of one :class:`~repro.engine.PackingSession`.

    All counters start at zero and only the owning session writes them;
    read them at any point (``session.stats``) for live instrumentation.
    Every field is backed by a metric cell in ``self.registry`` — pass a
    shared :class:`~repro.obs.TelemetryRegistry` to aggregate several
    surfaces into one export, or let the stats own a private one.

    Attributes:
        items_submitted: Items accepted by ``submit`` so far.
        bins_opened: Bins the packer has opened so far.
        bins_retired: Bins retired from the open index (all items departed).
        departures_processed: Departure events drained from the event heap.
        advances: Explicit ``advance`` calls.
        peak_open_bins: Maximum simultaneously open bins observed.
        peak_active_items: Maximum simultaneously active items observed.
        submit_seconds: Wall-clock time spent inside ``submit`` (sampled —
            exact for the first 64 calls, then a scaled 1-in-8 estimate).
        advance_seconds: Wall-clock time spent inside ``advance`` (sampled
            the same way).
        submit_latency: Per-event ``submit`` latency
            :class:`~repro.obs.Histogram` (raw sampled deltas, log buckets).
        advance_latency: Per-event ``advance`` latency histogram.
        registry: The backing :class:`~repro.obs.TelemetryRegistry`.
    """

    __slots__ = ("registry",) + tuple(f"_{name}" for name in FIELDS + _HISTOGRAM_FIELDS)

    def __init__(
        self, registry: TelemetryRegistry | None = None, **initial: float
    ) -> None:
        self.registry = registry if registry is not None else TelemetryRegistry()
        for name in _COUNTER_FIELDS:
            cell = self.registry.counter(f"engine.{name}")
            cell.value += int(initial.pop(name, 0))
            setattr(self, f"_{name}", cell)
        for name in _GAUGE_FIELDS:
            cell = self.registry.gauge(f"engine.{name}", aggregate="max")
            if cell.value is None:
                cell.value = 0
            cell.set(int(initial.pop(name, 0)))
            setattr(self, f"_{name}", cell)
        for name in _TIMER_FIELDS:
            cell = self.registry.timer(f"engine.{name}")
            cell.seconds += float(initial.pop(name, 0.0))
            setattr(self, f"_{name}", cell)
        for name in _HISTOGRAM_FIELDS:
            setattr(self, f"_{name}", self.registry.histogram(f"engine.{name}"))
        if initial:
            raise TypeError(f"unknown EngineStats fields: {sorted(initial)}")

    # -- the legacy attribute API (thin views over the registry cells) -------

    @property
    def items_submitted(self) -> int:
        """Items accepted by ``submit`` so far."""
        return self._items_submitted.value

    @items_submitted.setter
    def items_submitted(self, value: int) -> None:
        self._items_submitted.value = value

    @property
    def bins_opened(self) -> int:
        """Bins the packer has opened so far."""
        return self._bins_opened.value

    @bins_opened.setter
    def bins_opened(self, value: int) -> None:
        self._bins_opened.value = value

    @property
    def bins_retired(self) -> int:
        """Bins retired from the open index (all items departed)."""
        return self._bins_retired.value

    @bins_retired.setter
    def bins_retired(self, value: int) -> None:
        self._bins_retired.value = value

    @property
    def departures_processed(self) -> int:
        """Departure events drained from the event heap."""
        return self._departures_processed.value

    @departures_processed.setter
    def departures_processed(self, value: int) -> None:
        self._departures_processed.value = value

    @property
    def advances(self) -> int:
        """Explicit ``advance`` calls."""
        return self._advances.value

    @advances.setter
    def advances(self, value: int) -> None:
        self._advances.value = value

    @property
    def peak_open_bins(self) -> int:
        """Maximum simultaneously open bins observed."""
        return self._peak_open_bins.value

    @peak_open_bins.setter
    def peak_open_bins(self, value: int) -> None:
        self._peak_open_bins.value = value

    @property
    def peak_active_items(self) -> int:
        """Maximum simultaneously active items observed."""
        return self._peak_active_items.value

    @peak_active_items.setter
    def peak_active_items(self, value: int) -> None:
        self._peak_active_items.value = value

    @property
    def submit_seconds(self) -> float:
        """Wall-clock time spent inside ``submit``."""
        return self._submit_seconds.seconds

    @submit_seconds.setter
    def submit_seconds(self, value: float) -> None:
        self._submit_seconds.seconds = value

    @property
    def advance_seconds(self) -> float:
        """Wall-clock time spent inside ``advance``."""
        return self._advance_seconds.seconds

    @advance_seconds.setter
    def advance_seconds(self, value: float) -> None:
        self._advance_seconds.seconds = value

    @property
    def submit_latency(self) -> Histogram:
        """Per-event ``submit`` latency distribution (sampled raw deltas)."""
        return self._submit_latency

    @property
    def advance_latency(self) -> Histogram:
        """Per-event ``advance`` latency distribution (sampled raw deltas)."""
        return self._advance_latency

    # -- serialisation -------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for tabulation and JSON reports (legacy shape)."""
        return {name: getattr(self, name) for name in FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "EngineStats":
        """Rebuild stats from :meth:`as_dict` output (JSON round-trip)."""
        return cls(**dict(data))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EngineStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"EngineStats({self.as_dict()!r})"
