"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-algorithms`` — every registered packer with its dimensionality
  capability and declared parameters;
* ``generate`` — synthesise a workload and write it to a trace file
  (``--kind vector --dims D`` for multi-resource traces);
* ``pack`` — pack a trace with one algorithm, report metrics, optionally
  draw the Gantt chart;
* ``compare`` — run several algorithms on one trace side by side;
* ``bounds`` — print the Proposition 1–3 lower bounds (and the exact
  repacking adversary for small traces);
* ``serve`` — two modes over the same serving runtime
  (:mod:`repro.serving`): ``--trace FILE`` replays a recorded trace through
  the packing engine event by event with live snapshots and engine
  counters (``--pace`` schedules events against a drift-free monotonic
  deadline); ``--listen tcp:HOST:PORT | http:HOST:PORT | stdin`` serves
  live multi-tenant traffic with bounded per-tenant queues
  (``--queue-limit``), explicit backpressure replies, ``submit_many``
  micro-batching (``--batch-size`` / ``--batch-deadline``), a
  ``--max-tenants`` session cap, and graceful drain on SIGTERM/SIGINT that
  flushes every queue and reports per-tenant final snapshots;
* ``sweep`` — run one algorithm over a seed grid of generated workloads in
  parallel (``run_sweep``), reporting per-seed ratios against the exact
  adversary plus the merged :class:`~repro.analysis.SolverStats` counters;
  ``--workload trace --trace FILE`` sweeps over a recorded trace instead,
  with ``--loader`` selecting the object or columnar decode path in each
  worker; ``--shards N`` switches to the sharded work-stealing runner
  (``run_sharded_sweep``) with per-shard journals and memo caches under a
  ``--coordinator`` directory (see ``docs/DISTRIBUTED.md``);
* ``sweep-worker`` — attach one shard worker to an existing (or imminent)
  sweep ``--coordinator`` directory and drain it; run any number of these
  as independent processes/hosts sharing only that directory;
* ``fig8`` — print the paper's Figure 8 as a table and ASCII chart.

Every command is pure stdlib-argparse on top of the public API, so the CLI
doubles as executable documentation of the library.  Algorithm names and
parameters (``--algorithm``, ``--rho``, ``--alpha``, ``--num-classes``) all
flow through the validated :func:`~repro.algorithms.get_packer` path: an
unknown algorithm or a bad parameter exits with status 2 and a message
listing what is accepted.  Trace-consuming commands forward the loaded
trace's dimensionality through the same validation, so pointing a
scalar-only algorithm at a multi-resource trace fails up front with the
packer's supported dims listed.

Observability: ``pack``, ``compare``, ``bounds``, ``report``, ``replay``,
``serve`` and ``sweep`` accept ``--json`` (machine-readable report on
stdout — the tables' data plus a ``telemetry`` block), ``--obs FILE``
(write the run's full :class:`~repro.obs.TelemetryRegistry` as NDJSON, one
metric per line) and ``--flame FILE`` (write the run's span tree as a
collapsed-stack flamegraph profile).  All three flags are also accepted
globally, before the subcommand name.  ``serve --metrics-port PORT``
additionally exposes the live registry as a Prometheus ``/metrics``
endpoint on localhost while the trace replays (``--pace`` slows the replay
down to scrape it mid-run).

Resilience: ``serve --fault-policy {strict,skip,clamp}`` (with an optional
``--error-budget N``) hardens the serve path against malformed trace
records and inconsistent events; ``sweep`` gains ``--retries N``
(per-cell retry with backoff), ``--checkpoint FILE`` (NDJSON journal —
rerunning with the same file resumes completed cells) and
``--deadline SECONDS`` (per-cell adversary wall-clock budget with graceful
degradation to certified bounds).  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from .algorithms import available_packers, get_packer, opt_total, packer_info
from .analysis import render_series, render_table
from .bounds import (
    OptBounds,
    classify_departure_ratio_known,
    classify_duration_ratio_known,
    first_fit_ratio,
)
from .core import ItemList, ReproError
from .obs import TelemetryRegistry, export_dict, export_flamegraph, write_ndjson
from .resilience import FAULT_MODES, FaultPolicy, RetryPolicy
from .simulation import evaluate
from .viz import render_chart, render_gantt, render_profile
from .workloads import (
    TRACE_LOADERS,
    bounded_mu,
    bursty,
    gaming_sessions,
    load_trace,
    poisson_exponential,
    random_templates,
    recurring_jobs,
    save_trace,
    uniform_random,
    vector_uniform,
)

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "uniform":
        items = uniform_random(args.n, seed=args.seed)
    elif kind == "poisson":
        items = poisson_exponential(args.n, seed=args.seed)
    elif kind == "bounded-mu":
        items = bounded_mu(args.n, seed=args.seed, mu=args.mu)
    elif kind == "bursty":
        per_burst = max(args.n // 5, 1)
        items = bursty(5, per_burst, seed=args.seed)
    elif kind == "gaming":
        items = gaming_sessions(args.n, seed=args.seed)
    elif kind == "analytics":
        templates = random_templates(max(args.n // 20, 1), seed=args.seed)
        items = recurring_jobs(templates, horizon=float(args.n), seed=args.seed)
    elif kind == "vector":
        items = vector_uniform(
            args.n, dims=args.dims, seed=args.seed, correlation=args.correlation
        )
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown workload kind {kind}")
    save_trace(items, args.out)
    dims_note = f", dims={items.dims}" if items.dims > 1 else ""
    print(
        f"wrote {len(items)} items to {args.out} "
        f"(span={items.span():.2f}, mu={items.mu():.2f}{dims_note})"
    )
    return 0


# ---------------------------------------------------------------------------
# list-algorithms
# ---------------------------------------------------------------------------


def _cmd_list_algorithms(args: argparse.Namespace) -> int:
    registry = TelemetryRegistry()
    infos = available_packers()
    rows = [
        {
            "algorithm": name,
            "dims": info.describe_dims(),
            "params": ", ".join(p.describe() for p in info.params) or "-",
            "summary": info.summary,
        }
        for name, info in infos.items()
    ]
    payload = {
        "command": "list-algorithms",
        "algorithms": [
            {
                "name": name,
                "dims": list(info.dims) if info.dims is not None else None,
                "params": [
                    {
                        "name": p.name,
                        "required": p.required,
                        "default": p.default,
                    }
                    for p in info.params
                ],
                "summary": info.summary,
            }
            for name, info in infos.items()
        ],
    }
    return _finish(
        args, registry, payload, render_table(rows, title="registered algorithms")
    )


# ---------------------------------------------------------------------------
# output helpers
# ---------------------------------------------------------------------------


def _finish(
    args: argparse.Namespace,
    registry: TelemetryRegistry,
    payload: dict[str, object],
    text: str,
) -> int:
    """Emit one command's report and telemetry.

    With ``--json`` the payload (plus a ``telemetry`` block) is printed as a
    single JSON document instead of the human-readable ``text``; with
    ``--obs FILE`` the registry is additionally written to ``FILE`` as
    NDJSON, and with ``--flame FILE`` its span tree is written as a
    collapsed-stack flamegraph profile.  Returns the command's exit code
    (always 0).
    """
    if getattr(args, "obs", ""):
        write_ndjson(registry, args.obs)
    if getattr(args, "flame", ""):
        export_flamegraph(registry, args.flame)
    if getattr(args, "json", False):
        payload = dict(payload)
        payload["telemetry"] = export_dict(registry)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)
    return 0


# ---------------------------------------------------------------------------
# pack / compare helpers
# ---------------------------------------------------------------------------


def _packer_params(name: str, args: argparse.Namespace) -> dict[str, object]:
    """Validated constructor kwargs for ``name`` from the CLI flags.

    The candidate flags (``--rho``, ``--alpha``, ``--num-classes``) are
    filtered against the packer's declared parameters, so each algorithm
    receives exactly the flags it understands; unknown algorithm names
    surface as :class:`~repro.core.ReproError` (exit status 2).
    """
    candidates: dict[str, object] = {"rho": args.rho, "alpha": args.alpha}
    if args.num_classes:
        candidates["num_classes"] = args.num_classes
    try:
        accepted = set(packer_info(name).param_names())
    except (KeyError, ValueError) as exc:
        raise ReproError(str(exc.args[0] if exc.args else exc)) from exc
    return {k: v for k, v in candidates.items() if k in accepted}


def _make_packer(name: str, args: argparse.Namespace, *, dims: int | None = None):
    """Build a packer from CLI flags through the validated registry path.

    ``dims`` (the loaded trace's dimensionality) is forwarded to
    :func:`~repro.algorithms.get_packer`, which rejects packers that cannot
    place items of that dimensionality — so e.g. ``pack --algorithm
    first-fit`` on a 3-resource trace fails up front, with the packer's
    supported dims listed, instead of mid-pack.

    Invalid parameter values surface as :class:`~repro.core.ReproError`
    (exit status 2), same as unknown names in :func:`_packer_params`.
    """
    kwargs = _packer_params(name, args)
    if dims is not None:
        kwargs["dims"] = dims
    try:
        return get_packer(name, **kwargs)
    except (KeyError, ValueError) as exc:
        raise ReproError(str(exc.args[0] if exc.args else exc)) from exc


def _load(args: argparse.Namespace, policy: "FaultPolicy | None" = None) -> ItemList:
    return load_trace(
        args.trace, policy=policy, loader=getattr(args, "loader", "object")
    )


def _require_scalar_for_exact_opt(items: ItemList) -> None:
    """``--exact-opt`` solves the repacking adversary, which is scalar-only."""
    if items.dims > 1:
        raise ReproError(
            f"--exact-opt is scalar-only (trace is {items.dims}-dimensional); "
            "the exact repacking adversary does not support vector instances — "
            "use the `bounds` command's Proposition 1-3 lower bounds instead"
        )


def _cmd_pack(args: argparse.Namespace) -> int:
    registry = TelemetryRegistry()
    items = _load(args)
    packer = _make_packer(args.algorithm, args, dims=items.dims)
    if args.exact_opt:
        _require_scalar_for_exact_opt(items)
    with registry.span("cli.pack"):
        if args.noise_sigma > 0:
            from .analysis import noisy_estimator
            from .algorithms.base import OnlinePacker
            from .simulation import Simulator

            if not isinstance(packer, OnlinePacker):
                print(
                    "error: --noise-sigma requires an online algorithm", file=sys.stderr
                )
                return 2
            result = Simulator(packer).run(
                items, noisy_estimator(args.noise_sigma, args.noise_seed)
            ).packing
        else:
            result = packer.pack(items)
        result.validate()
        opt = opt_total(items) if args.exact_opt else None
        metrics = evaluate(result, opt=opt, registry=registry)
    text_parts = [render_table([metrics.as_dict()], title=f"pack: {packer.describe()}")]
    if args.gantt:
        text_parts.append("")
        text_parts.append(render_gantt(result, width=args.width))
    if args.profile:
        text_parts.append("")
        text_parts.append("demand profile S(t):")
        text_parts.append(render_profile(items.size_profile(), width=args.width))
    payload = {
        "command": "pack",
        "trace": args.trace,
        "algorithm": packer.describe(),
        "metrics": metrics.as_dict(),
    }
    return _finish(args, registry, payload, "\n".join(text_parts))


def _cmd_compare(args: argparse.Namespace) -> int:
    registry = TelemetryRegistry()
    items = _load(args)
    if args.algorithms:
        names = args.algorithms.split(",")
    else:
        # Default to every packer that can place this trace's dimensionality.
        names = [
            name
            for name, info in available_packers().items()
            if info.supports_dims(items.dims)
        ]
    if args.exact_opt:
        _require_scalar_for_exact_opt(items)
    opt = opt_total(items) if args.exact_opt else None
    rows = []
    with registry.span("cli.compare"):
        for name in names:
            packer = _make_packer(name.strip(), args, dims=items.dims)
            metrics = evaluate(packer.pack(items), opt=opt, registry=registry)
            rows.append(metrics.as_dict())
    rows.sort(key=lambda r: r["total_usage"])  # type: ignore[arg-type,return-value]
    payload = {"command": "compare", "trace": args.trace, "rows": rows}
    return _finish(
        args,
        registry,
        payload,
        render_table(rows, title=f"compare on {args.trace} (best first)"),
    )


def _cmd_bounds(args: argparse.Namespace) -> int:
    registry = TelemetryRegistry()
    items = _load(args)
    if args.exact_opt:
        _require_scalar_for_exact_opt(items)
    with registry.span("cli.bounds"):
        bounds = OptBounds.of(items)
        rows = [
            {"bound": "Prop 1: d(R) total demand", "value": bounds.demand},
            {"bound": "Prop 2: span(R)", "value": bounds.span},
            {"bound": "Prop 3: integral ceil(S(t))", "value": bounds.ceil_size},
        ]
        if args.exact_opt:
            rows.append(
                {"bound": "exact OPT_total (repacking adversary)", "value": opt_total(items)}
            )
        for row in rows:
            registry.gauge("bounds.value", bound=row["bound"]).set(row["value"])
    payload = {"command": "bounds", "trace": args.trace, "rows": rows}
    return _finish(
        args, registry, payload, render_table(rows, title=f"lower bounds for {args.trace}")
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import render_report, report_data
    from .analysis.report import DEFAULT_ALGORITHMS

    registry = TelemetryRegistry()
    items = _load(args)
    names = (
        [n.strip() for n in args.algorithms.split(",")]
        if args.algorithms
        else list(DEFAULT_ALGORITHMS)
    )
    kwargs = {
        "classify-departure": {"rho": args.rho},
        "classify-duration": {"alpha": args.alpha},
        "classify-combined": {"alpha": args.alpha},
    }
    with registry.span("cli.report"):
        data = report_data(
            items,
            algorithms=names,
            title=f"report: {args.trace}",
            packer_kwargs=kwargs,
            registry=registry,
        )
        text = render_report(data, width=args.width, include_gantt=not args.no_gantt)
    payload = {"command": "report", "trace": args.trace, **data.payload}
    return _finish(args, registry, payload, text)


def _cmd_replay(args: argparse.Namespace) -> int:
    from .algorithms.base import OnlinePacker
    from .simulation import first_divergence, record_decisions

    registry = TelemetryRegistry()
    items = _load(args)
    packer = _make_packer(args.algorithm, args, dims=items.dims)
    if not isinstance(packer, OnlinePacker):
        print("error: replay requires an online algorithm", file=sys.stderr)
        return 2
    if args.versus:
        other = _make_packer(args.versus, args, dims=items.dims)
        if not isinstance(other, OnlinePacker):
            print("error: --versus requires an online algorithm", file=sys.stderr)
            return 2
        with registry.span("cli.replay"):
            div = first_divergence(packer, other, items, registry=registry)
        payload: dict[str, object] = {
            "command": "replay",
            "trace": args.trace,
            "algorithm": packer.describe(),
            "versus": other.describe(),
        }
        if div is None:
            payload["divergence"] = None
            text = (
                f"{packer.describe()} and {other.describe()} induce identical "
                f"groupings on {args.trace}"
            )
            return _finish(args, registry, payload, text)
        da, db = div
        payload["divergence"] = {"a": da.as_dict(), "b": db.as_dict()}
        text = "\n".join(
            [
                f"first divergence at item {da.item_id} (t={da.time:g}):",
                f"  {packer.describe():30s} -> bin {da.chosen_bin} "
                f"(open={list(da.open_bins)}, levels={[round(l, 3) for l in da.levels]})",
                f"  {other.describe():30s} -> bin {db.chosen_bin} "
                f"(open={list(db.open_bins)}, levels={[round(l, 3) for l in db.levels]})",
            ]
        )
        return _finish(args, registry, payload, text)
    with registry.span("cli.replay"):
        log = record_decisions(packer, items, registry=registry)
    rows = [
        {
            "item": d.item_id,
            "t": d.time,
            "open bins": len(d.open_bins),
            "feasible": len(d.feasible_bins),
            "chosen": d.chosen_bin,
            "new bin": d.opened_new,
        }
        for d in log.decisions[: args.limit]
    ]
    text = "\n".join(
        [
            render_table(rows, title=f"replay: {log.algorithm} on {args.trace}"),
            f"\n{len(log.new_bin_openings())} bin openings over {len(log)} placements",
        ]
    )
    payload = {
        "command": "replay",
        "trace": args.trace,
        "algorithm": log.algorithm,
        "placements": len(log),
        "bin_openings": len(log.new_bin_openings()),
        "log": log.as_dict(),
    }
    return _finish(args, registry, payload, text)


def _start_metrics_server(args: argparse.Namespace, source):
    """Start the optional ``--metrics-port`` endpoint over ``source``.

    Returns ``(server, error_code)``: the started
    :class:`~repro.obs.MetricsServer` (or ``None`` when the flag is unset)
    and ``2`` when the bind failed (message already printed).
    """
    if args.metrics_port is None or args.metrics_port < 0:
        return None, 0
    from .obs import MetricsServer

    try:
        server = MetricsServer(source, port=args.metrics_port)
        server.start()
    except OSError as exc:
        print(
            f"error: cannot bind metrics endpoint on port {args.metrics_port}: "
            f"{exc} (is the port already in use? try --metrics-port 0 for an "
            "ephemeral port)",
            file=sys.stderr,
        )
        return None, 2
    print(f"metrics endpoint: {server.url}", file=sys.stderr)
    return server, 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.listen and args.trace:
        print(
            "error: --trace (replay) and --listen (live) are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if not args.listen and not args.trace:
        print(
            "error: serve needs --trace FILE (replay mode) or --listen SPEC "
            "(live mode: tcp:HOST:PORT, http:HOST:PORT or stdin)",
            file=sys.stderr,
        )
        return 2
    if args.listen:
        return _serve_listen(args)
    return _serve_replay(args)


def _serve_replay(args: argparse.Namespace) -> int:
    """Replay a recorded trace through a manager-owned session.

    A thin driver over the serving tier's
    :class:`~repro.serving.ReplayTransport`: the session's packer, fault
    policy and telemetry registry are exactly the legacy serve wiring, so
    placements, engine counters and snapshots are bit-identical to the
    pre-runtime replay path.
    """
    from .algorithms.base import OnlinePacker
    from .serving import ReplayTransport, SessionManager

    registry = TelemetryRegistry()
    policy = None
    if args.fault_policy != "strict" or args.error_budget is not None:
        policy = FaultPolicy(
            args.fault_policy,
            error_budget=args.error_budget,
            registry=registry,
        )
    items = _load(args, policy)
    packer = _make_packer(args.algorithm, args, dims=items.dims)
    if not isinstance(packer, OnlinePacker):
        print("error: serve requires an online algorithm", file=sys.stderr)
        return 2
    manager = SessionManager()
    session = manager.open("replay", packer=packer, policy=policy, registry=registry)
    live = args.snapshot_every and not getattr(args, "json", False)

    def _print_snapshot(snap) -> None:
        print(
            f"t={snap.time:<12g} submitted={snap.items_submitted:<6d} "
            f"active={snap.active_items:<6d} open_bins={snap.open_bins:<5d} "
            f"usage={snap.usage_time:.3f}"
        )

    transport = ReplayTransport(
        items,
        tenant="replay",
        pace=args.pace,
        snapshot_every=args.snapshot_every if live else 0,
        on_snapshot=_print_snapshot if live else None,
    )
    server, code = _start_metrics_server(args, registry)
    if code:
        return code
    try:
        with registry.span("cli.serve"):
            transport.run(manager)
            result = session.result()
            result.validate()
            metrics = evaluate(result, registry=registry)
    finally:
        if server is not None:
            server.stop()
    stats_rows = [{"counter": k, "value": v} for k, v in session.stats.as_dict().items()]
    text_parts = [
        render_table([metrics.as_dict()], title=f"serve: {packer.describe()}"),
        "",
        render_table(stats_rows, title="engine counters"),
    ]
    payload = {
        "command": "serve",
        "trace": args.trace,
        "algorithm": packer.describe(),
        "metrics": metrics.as_dict(),
        "engine": session.stats.as_dict(),
    }
    if policy is not None:
        payload["faults"] = {
            "policy": policy.mode,
            "records_dropped": policy.dropped,
            "records_clamped": policy.clamped,
            "budget_tripped": policy.tripped,
        }
        if policy.faults:
            text_parts.append("")
            text_parts.append(
                f"fault policy {policy.mode}: {policy.dropped} records dropped, "
                f"{policy.clamped} clamped"
            )
    return _finish(args, registry, payload, "\n".join(text_parts))


def _parse_listen(spec: str) -> tuple[str, str, int]:
    """Parse a ``--listen`` spec into ``(kind, host, port)``.

    Accepted: ``tcp:HOST:PORT``, ``http:HOST:PORT``, ``stdin``.
    """
    if spec == "stdin":
        return ("stdin", "", 0)
    kind, _, rest = spec.partition(":")
    if kind in ("tcp", "http"):
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return (kind, host, int(port))
    raise ReproError(
        f"--listen expects tcp:HOST:PORT, http:HOST:PORT or stdin, got {spec!r}"
    )


async def _serve_until_stopped(runtime, kind: str, host: str, port: int):
    """Run one live transport until SIGTERM/SIGINT (or stdin EOF), then drain.

    Returns the :class:`~repro.serving.DrainReport`.  The drain happens
    *inside* the running loop so batcher tasks flush every admitted item
    before sessions close.
    """
    import asyncio
    import signal

    from .serving import HttpTransport, StdinTransport, TcpTransport

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    handled = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            handled.append(sig)
        except (NotImplementedError, RuntimeError):  # non-unix / nested loop
            pass
    try:
        if kind == "stdin":
            transport = StdinTransport(runtime)
            reader = asyncio.ensure_future(transport.run())
            stopper = asyncio.ensure_future(stop.wait())
            await asyncio.wait(
                {reader, stopper}, return_when=asyncio.FIRST_COMPLETED
            )
            transport.stop()
            stopper.cancel()
            report = await runtime.drain()
            try:
                await asyncio.wait_for(reader, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                reader.cancel()
        else:
            cls = TcpTransport if kind == "tcp" else HttpTransport
            transport = cls(runtime, host=host, port=port)
            await transport.start()
            print(f"serving endpoint: {transport.url}", file=sys.stderr)
            await stop.wait()
            report = await runtime.drain()
            await transport.stop()
    finally:
        for sig in handled:
            loop.remove_signal_handler(sig)
    return report


def _serve_listen(args: argparse.Namespace) -> int:
    """Live serving over the layered runtime (``serve --listen``).

    Builds the three serving tiers — :class:`~repro.serving.SessionManager`
    with a default :class:`~repro.serving.TenantConfig` from the CLI flags,
    a :class:`~repro.serving.ServingRuntime` for admission control and
    micro-batching, and the transport named by ``--listen`` — then serves
    until SIGTERM/SIGINT (or stdin EOF) triggers a graceful drain.  The
    final report accounts every admitted arrival per tenant; ``lost`` is
    asserted zero by the CI smoke.
    """
    import asyncio

    from .algorithms.base import OnlinePacker
    from .serving import ServingRuntime, SessionManager, TenantConfig

    kind, host, port = _parse_listen(args.listen)
    packer = _make_packer(args.algorithm, args)
    if not isinstance(packer, OnlinePacker):
        print("error: serve requires an online algorithm", file=sys.stderr)
        return 2
    if args.wal and args.recover and args.wal != args.recover:
        print(
            "error: --wal and --recover name different directories; use one "
            "(recovery journals new arrivals into the recovered directory)",
            file=sys.stderr,
        )
        return 2
    wal_dir = args.recover or args.wal
    registry = TelemetryRegistry()
    config = TenantConfig(
        algorithm=args.algorithm,
        packer_kwargs=_packer_params(args.algorithm, args),
        fault_mode=args.fault_policy,
        error_budget=args.error_budget,
    )
    manager = SessionManager(config, registry=registry, max_tenants=args.max_tenants)
    wal = None
    if wal_dir:
        from .serving import WalConfig, WriteAheadLog

        wal = WriteAheadLog(
            wal_dir,
            config=WalConfig(
                sync=args.wal_sync, checkpoint_records=args.checkpoint_every
            ),
            registry=registry,
        )
    rate_limiter = None
    if args.rate_limit > 0:
        from .serving import RateLimiter

        rate_limiter = RateLimiter(
            args.rate_limit, args.rate_burst, registry=registry
        )
    runtime = ServingRuntime(
        manager,
        queue_limit=args.queue_limit,
        batch_size=args.batch_size,
        batch_deadline=args.batch_deadline,
        wal=wal,
        rate_limiter=rate_limiter,
        max_resident=args.max_resident_tenants or None,
    )
    if args.recover:
        from .serving import recover

        recovery = recover(runtime)
        print(
            f"recovered {recovery.recovered_tenants} tenant(s): "
            f"{recovery.replayed} tail records replayed, "
            f"{recovery.torn_records} torn tail(s) healed, "
            f"{recovery.duration_seconds:.3f}s",
            file=sys.stderr,
        )
    server, code = _start_metrics_server(args, manager.export_registry)
    if code:
        return code
    try:
        with registry.span("cli.serve"):
            report = asyncio.run(_serve_until_stopped(runtime, kind, host, port))
    finally:
        if server is not None:
            server.stop()
    rows = [
        {
            "tenant": closed.tenant,
            "submitted": closed.snapshot.items_submitted,
            "bins_opened": closed.snapshot.bins_opened,
            "usage": round(closed.snapshot.usage_time, 6),
        }
        for closed in report.closed
    ]
    text_parts = []
    if rows:
        text_parts.append(
            render_table(rows, title=f"serve: drained {len(rows)} tenant sessions")
        )
    else:
        text_parts.append("serve: drained 0 tenant sessions")
    text_parts.append(
        f"drain: admitted={report.admitted} placed={report.placed} "
        f"dropped={report.dropped_by_policy} lost={report.lost} "
        f"flushed={report.flushed_items} in {report.duration_seconds:.3f}s"
    )
    payload = {
        "command": "serve",
        "listen": args.listen,
        "algorithm": args.algorithm,
        "tenants": [
            {
                "tenant": closed.tenant,
                "snapshot": {
                    "items_submitted": closed.snapshot.items_submitted,
                    "active_items": closed.snapshot.active_items,
                    "open_bins": closed.snapshot.open_bins,
                    "bins_opened": closed.snapshot.bins_opened,
                    "usage_time": closed.snapshot.usage_time,
                },
                "engine": closed.stats,
            }
            for closed in report.closed
        ],
        "drain": {
            "admitted": report.admitted,
            "placed": report.placed,
            "dropped_by_policy": report.dropped_by_policy,
            "lost": report.lost,
            "flushed_items": report.flushed_items,
            "duration_seconds": report.duration_seconds,
        },
    }
    return _finish(args, manager.export_registry(), payload, "\n".join(text_parts))


def _sweep_gc(args: argparse.Namespace) -> int:
    """Collect a completed sharded sweep's coordinator directory."""
    from .analysis import ShardCoordinator

    if not args.coordinator:
        raise ReproError("--gc requires --coordinator DIR")
    registry = TelemetryRegistry()
    with registry.span("cli.sweep_gc"):
        report = ShardCoordinator(args.coordinator).gc(
            force=args.gc_force, keep_manifest=not args.gc_force
        )
    payload = {
        "command": "sweep",
        "gc": {
            "coordinator": report.coordinator,
            "removed_files": report.removed_files,
            "reclaimed_bytes": report.reclaimed_bytes,
            "kept_manifest": report.kept_manifest,
        },
    }
    text = (
        f"sweep gc: removed {report.removed_files} file(s), reclaimed "
        f"{report.reclaimed_bytes} bytes under {report.coordinator}"
        + ("" if report.kept_manifest else " (manifest and directory removed)")
    )
    return _finish(args, registry, payload, text)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import SolverStats, SweepTask, run_sharded_sweep, run_sweep

    if args.gc:
        return _sweep_gc(args)
    if not args.algorithm:
        raise ReproError("--algorithm is required (except with --gc)")
    if args.seeds < 1:
        raise ReproError("--seeds must be >= 1")
    packer_kwargs = _packer_params(args.algorithm, args)
    workload_kwargs: dict[str, object] = {"n": args.n}
    if args.workload == "bounded-mu":
        workload_kwargs["mu"] = args.mu
    sweep_dims = 1
    if args.workload == "vector":
        sweep_dims = args.dims
        workload_kwargs["dims"] = args.dims
    if args.workload == "trace":
        if not args.trace:
            raise ReproError("--workload trace requires --trace FILE")
        # The trace is fixed input, not generated: every cell replays the
        # whole file (no n-truncation), the seed only labels the cell, and
        # --loader picks the object/columnar decode path inside each worker.
        workload_kwargs = {"path": args.trace, "loader": args.loader}
        sweep_dims = _load(args).dims
    # Validate parameter values and dimensionality capability up front.
    _make_packer(args.algorithm, args, dims=sweep_dims)
    tasks = [
        SweepTask(
            packer=args.algorithm,
            workload=args.workload,
            packer_kwargs=packer_kwargs,
            workload_kwargs={**workload_kwargs, "seed": seed},
            label=f"seed={seed}",
        )
        for seed in range(args.seeds)
    ]
    registry = TelemetryRegistry()
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    with registry.span("cli.sweep"):
        if args.shards > 0:
            if args.checkpoint:
                raise ReproError(
                    "--checkpoint applies to single-host sweeps; sharded "
                    "sweeps keep per-shard journals under --coordinator"
                )
            outcomes = run_sharded_sweep(
                tasks,
                shards=args.shards,
                coordinator_dir=args.coordinator or None,
                chunk_size=args.chunk_size or None,
                lease_ttl=args.lease_ttl,
                memo_path=args.memo or None,
                registry=registry,
                retry=retry,
                deadline=args.deadline or None,
            )
        else:
            outcomes = run_sweep(
                tasks,
                max_workers=args.workers or None,
                executor=args.executor,
                memo_path=args.memo or None,
                registry=registry,
                retry=retry,
                checkpoint=args.checkpoint or None,
                deadline=args.deadline or None,
            )
    rows = [
        {
            "seed": o.task.label,
            "usage": o.usage,
            "denominator": o.denominator,
            "ratio": o.ratio,
            "exact": o.exact,
            "note": o.error or o.degraded_reason
            or ("resumed" if o.from_checkpoint else ""),
        }
        for o in outcomes
    ]
    merged = SolverStats()
    for o in outcomes:
        merged.merge(o.solver)
    stats_rows = [{"counter": k, "value": v} for k, v in merged.as_dict().items()]
    text = "\n".join(
        [
            render_table(
                rows,
                title=(
                    f"sweep: {args.algorithm} on trace {args.trace} "
                    f"({args.seeds} seeds)"
                    if args.workload == "trace"
                    else f"sweep: {args.algorithm} on {args.workload} "
                    f"(n={args.n}, {args.seeds} seeds)"
                ),
            ),
            "",
            render_table(stats_rows, title="adversary solver counters (all cells)"),
        ]
    )
    payload = {
        "command": "sweep",
        "algorithm": args.algorithm,
        "workload": args.workload,
        "shards": args.shards,
        "rows": rows,
        "solver": merged.as_dict(),
        "resilience": {
            "resumed": sum(1 for o in outcomes if o.from_checkpoint),
            "retried": sum(1 for o in outcomes if o.attempts > 1),
            "failed": sum(1 for o in outcomes if o.error is not None),
            "degraded": sum(1 for o in outcomes if o.degraded_reason is not None),
        },
    }
    return _finish(args, registry, payload, text)


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    from .analysis import run_shard_worker

    worker = args.worker or f"worker-{os.getpid()}"
    registry = TelemetryRegistry()
    with registry.span("cli.sweep_worker"):
        report = run_shard_worker(
            args.coordinator,
            worker,
            poll_interval=args.poll_interval,
            registry=registry,
            wait_manifest=args.wait_manifest,
        )
    rows = [{"field": k, "value": v} for k, v in report.as_dict().items()]
    text = render_table(
        rows, title=f"sweep-worker: {worker} drained {args.coordinator}"
    )
    payload = {
        "command": "sweep-worker",
        "coordinator": args.coordinator,
        "report": report.as_dict(),
    }
    return _finish(args, registry, payload, text)


def _cmd_fig8(args: argparse.Namespace) -> int:
    mus = [float(m) for m in args.mus.split(",")]
    series = {
        "first-fit (mu+4)": [first_fit_ratio(mu) for mu in mus],
        "classify-departure (2sqrt(mu)+3)": [
            classify_departure_ratio_known(mu) for mu in mus
        ],
        "classify-duration (min_n)": [classify_duration_ratio_known(mu) for mu in mus],
    }
    print(render_series("mu", mus, series, title="Figure 8: competitive ratios vs mu"))
    print()
    print(render_chart(mus, series, width=args.width, height=18))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clairvoyant MinUsageTime Dynamic Bin Packing (Ren & Tang, SPAA'16)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report on stdout"
    )
    parser.add_argument(
        "--obs", default="", metavar="FILE", help="write run telemetry to FILE as NDJSON"
    )
    parser.add_argument(
        "--flame",
        default="",
        metavar="FILE",
        help="write the run's span tree to FILE as a collapsed-stack flamegraph",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_output_opts(p: argparse.ArgumentParser) -> None:
        # SUPPRESS keeps the subcommand from clobbering the global flags'
        # values with its own defaults (subparsers parse a fresh namespace).
        p.add_argument(
            "--json",
            action="store_true",
            default=argparse.SUPPRESS,
            help="machine-readable JSON report on stdout",
        )
        p.add_argument(
            "--obs",
            default=argparse.SUPPRESS,
            metavar="FILE",
            help="write run telemetry to FILE as NDJSON",
        )
        p.add_argument(
            "--flame",
            default=argparse.SUPPRESS,
            metavar="FILE",
            help="write the run's span tree to FILE as a collapsed-stack flamegraph",
        )

    def add_loader_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--loader",
            choices=list(TRACE_LOADERS),
            default="object",
            help="trace loader: object parses per record (default), columnar "
            "memory-maps the file and block-parses the regular numeric schema, "
            "falling back to the object loader on any irregular line "
            "(identical items and fault diagnostics either way)",
        )

    lst = sub.add_parser(
        "list-algorithms",
        help="list registered packers with dims capability and parameters",
    )
    add_output_opts(lst)
    lst.set_defaults(func=_cmd_list_algorithms)

    gen = sub.add_parser("generate", help="synthesise a workload trace")
    gen.add_argument(
        "--kind",
        choices=[
            "uniform",
            "poisson",
            "bounded-mu",
            "bursty",
            "gaming",
            "analytics",
            "vector",
        ],
        default="uniform",
    )
    gen.add_argument("--n", type=int, default=100, help="number of items")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--mu", type=float, default=10.0, help="duration ratio (bounded-mu)")
    gen.add_argument(
        "--dims", type=int, default=3, help="resource dimensions (vector kind)"
    )
    gen.add_argument(
        "--correlation",
        type=float,
        default=0.0,
        help="cross-dimension size correlation in [0, 1] (vector kind)",
    )
    gen.add_argument("--out", required=True, help="output trace (.jsonl or .csv)")
    gen.set_defaults(func=_cmd_generate)

    def add_packer_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--rho", type=float, default=2.0, help="classify-departure width")
        p.add_argument("--alpha", type=float, default=2.0, help="duration class ratio")
        p.add_argument("--num-classes", type=int, default=0, help="hybrid-first-fit K")
        p.add_argument("--exact-opt", action="store_true", help="solve OPT_total exactly")
        p.add_argument("--width", type=int, default=78, help="chart width")

    pack = sub.add_parser("pack", help="pack a trace with one algorithm")
    pack.add_argument("--trace", required=True)
    pack.add_argument(
        "--algorithm",
        required=True,
        help=f"one of: {', '.join(available_packers())}",
    )
    pack.add_argument("--gantt", action="store_true", help="draw the packing")
    pack.add_argument("--profile", action="store_true", help="draw the demand profile")
    pack.add_argument(
        "--noise-sigma",
        type=float,
        default=0.0,
        help="simulate log-normal duration-prediction noise of this sigma",
    )
    pack.add_argument("--noise-seed", type=int, default=0)
    add_packer_opts(pack)
    add_output_opts(pack)
    pack.set_defaults(func=_cmd_pack)

    cmp_ = sub.add_parser("compare", help="compare algorithms on a trace")
    cmp_.add_argument("--trace", required=True)
    cmp_.add_argument(
        "--algorithms", default="", help="comma-separated names (default: all)"
    )
    add_packer_opts(cmp_)
    add_output_opts(cmp_)
    cmp_.set_defaults(func=_cmd_compare)

    bnd = sub.add_parser("bounds", help="print OPT lower bounds for a trace")
    bnd.add_argument("--trace", required=True)
    bnd.add_argument("--exact-opt", action="store_true")
    add_output_opts(bnd)
    bnd.set_defaults(func=_cmd_bounds)

    rpt = sub.add_parser("report", help="full workload report (bounds + comparison)")
    rpt.add_argument("--trace", required=True)
    rpt.add_argument("--algorithms", default="", help="comma-separated (default: a representative set)")
    rpt.add_argument("--no-gantt", action="store_true")
    add_packer_opts(rpt)
    add_output_opts(rpt)
    rpt.set_defaults(func=_cmd_report)

    rep = sub.add_parser("replay", help="show an online packer's decisions")
    rep.add_argument("--trace", required=True)
    rep.add_argument("--algorithm", required=True, help="online algorithm name")
    rep.add_argument(
        "--versus",
        default="",
        help="second algorithm: report the first structural divergence",
    )
    rep.add_argument("--limit", type=int, default=30, help="decisions to print")
    add_loader_opt(rep)
    add_packer_opts(rep)
    add_output_opts(rep)
    rep.set_defaults(func=_cmd_replay)

    srv = sub.add_parser(
        "serve",
        help="replay a trace through the packing engine, or serve live traffic",
    )
    srv.add_argument(
        "--trace",
        default="",
        help="replay mode: stream this recorded trace event by event "
        "(mutually exclusive with --listen)",
    )
    srv.add_argument(
        "--listen",
        default="",
        metavar="SPEC",
        help="live mode: accept arrivals over a transport — tcp:HOST:PORT "
        "(line protocol), http:HOST:PORT (POST /submit NDJSON) or stdin; "
        "serves until SIGTERM/SIGINT (or stdin EOF), then drains gracefully",
    )
    srv.add_argument("--algorithm", required=True, help="online algorithm name")
    srv.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="live mode: max pending arrivals per tenant before offers get "
        "an explicit busy (backpressure) reply",
    )
    srv.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="live mode: flush a tenant's pending arrivals into the engine "
        "at this batch size",
    )
    srv.add_argument(
        "--batch-deadline",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="live mode: flush no later than this long after the oldest "
        "pending arrival (bounds added latency at low rates)",
    )
    srv.add_argument(
        "--max-tenants",
        type=int,
        default=1024,
        help="live mode: cap on concurrently open tenant sessions",
    )
    srv.add_argument(
        "--wal",
        default="",
        metavar="DIR",
        help="live mode: journal every admitted arrival to a per-tenant "
        "write-ahead log under DIR before acknowledging it, making the "
        "serve crash-safe (restart with --recover DIR)",
    )
    srv.add_argument(
        "--recover",
        default="",
        metavar="DIR",
        help="live mode: rehydrate every tenant session from the "
        "write-ahead log under DIR before accepting traffic, then keep "
        "journaling there (implies --wal DIR)",
    )
    srv.add_argument(
        "--wal-sync",
        choices=["group", "always"],
        default="group",
        help="WAL durability: 'group' fsyncs at micro-batch flushes "
        "(survives SIGKILL/OOM; default), 'always' fsyncs every arrival "
        "(survives power loss, costs one fsync per record)",
    )
    srv.add_argument(
        "--checkpoint-every",
        type=int,
        default=512,
        metavar="N",
        help="checkpoint (and compact) a tenant's journal every N records "
        "(0: checkpoint only on eviction and drain)",
    )
    srv.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="R",
        help="live mode: per-tenant token-bucket rate limit, arrivals per "
        "second; throttled offers get a busy reply with a deficit-sized "
        "retry_ms hint (0: unlimited, the default)",
    )
    srv.add_argument(
        "--rate-burst",
        type=float,
        default=64.0,
        metavar="B",
        help="token-bucket capacity: a tenant's first B arrivals (and any "
        "B-deep burst after idling) are never throttled",
    )
    srv.add_argument(
        "--max-resident-tenants",
        type=int,
        default=0,
        metavar="N",
        help="live mode: keep at most N tenant sessions in memory; the "
        "least recently active is checkpointed to the WAL and evicted, "
        "rehydrating transparently on its next request (requires --wal; "
        "0: unlimited)",
    )
    srv.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="print a live snapshot every N arrivals (0: only the final report)",
    )
    srv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose a Prometheus /metrics endpoint on localhost:PORT while "
        "replaying (0: ephemeral port, printed to stderr)",
    )
    srv.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between replayed events (slows the run for live scraping)",
    )
    srv.add_argument(
        "--fault-policy",
        choices=list(FAULT_MODES),
        default="strict",
        help="how malformed trace records and inconsistent events are handled: "
        "strict raises (default), skip drops them, clamp repairs repairable ones",
    )
    srv.add_argument(
        "--error-budget",
        type=int,
        default=None,
        metavar="N",
        help="maximum faults absorbed before the policy trips back to strict "
        "(default: unlimited)",
    )
    add_loader_opt(srv)
    add_packer_opts(srv)
    add_output_opts(srv)
    srv.set_defaults(func=_cmd_serve)

    swp = sub.add_parser("sweep", help="parallel ratio sweep over a seed grid")
    swp.add_argument(
        "--algorithm",
        default="",
        help=f"one of: {', '.join(available_packers())} (required unless --gc)",
    )
    swp.add_argument(
        "--gc",
        action="store_true",
        help="garbage-collect a completed sharded sweep: remove the leases, "
        "done markers, shard journals and memo caches under --coordinator "
        "(the manifest stays as a record); refuses if cells are unsettled "
        "unless --gc-force",
    )
    swp.add_argument(
        "--gc-force",
        action="store_true",
        help="with --gc: collect even an incomplete sweep (abandons its "
        "unsettled cells) and remove the manifest and directory too",
    )
    swp.add_argument(
        "--workload",
        default="uniform",
        help="generator name (uniform, poisson, bounded-mu, bursty, gaming, "
        "cluster, vector, trace)",
    )
    swp.add_argument(
        "--trace",
        default="",
        help="trace file for --workload trace (each cell replays the whole "
        "file; --loader picks the decode path)",
    )
    swp.add_argument("--n", type=int, default=40, help="items per workload")
    swp.add_argument("--mu", type=float, default=10.0, help="duration ratio (bounded-mu)")
    swp.add_argument(
        "--dims", type=int, default=3, help="resource dimensions (vector workload)"
    )
    swp.add_argument("--seeds", type=int, default=5, help="number of seeds (cells)")
    swp.add_argument(
        "--workers", type=int, default=0, help="parallel workers (0: executor default)"
    )
    swp.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="process",
        help="how cells run",
    )
    swp.add_argument(
        "--memo",
        default="",
        help="path of a disk-backed adversary memo cache shared by all cells",
    )
    swp.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry failed cells up to N times with exponential backoff "
        "(default: 0, crash isolation only)",
    )
    swp.add_argument(
        "--checkpoint",
        default="",
        metavar="FILE",
        help="NDJSON checkpoint journal: cells are appended as they complete; "
        "rerunning with the same FILE resumes instead of recomputing",
    )
    swp.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-cell wall-clock budget for the exact adversary; on expiry the "
        "cell degrades to certified lower bounds (exact=false) instead of hanging",
    )
    swp.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the sweep as N work-stealing shard workers with per-shard "
        "journals and memo caches (0: single-host run_sweep, the default); "
        "see docs/DISTRIBUTED.md",
    )
    swp.add_argument(
        "--coordinator",
        default="",
        metavar="DIR",
        help="coordinator directory for --shards: manifest, leases, per-shard "
        "journals; rerunning with the same DIR resumes completed cells "
        "(default: a private temporary directory, no resume)",
    )
    swp.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        metavar="K",
        help="cells per lease in sharded mode (0: auto-size for stealing)",
    )
    swp.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="sharded mode: seconds before an unrenewed chunk lease may be "
        "stolen by another worker (crash recovery latency)",
    )
    # --loader selects the decode path for `--workload trace` cells (and for
    # the driver-side dims validation); generated workloads ignore it.
    add_loader_opt(swp)
    add_packer_opts(swp)
    add_output_opts(swp)
    swp.set_defaults(func=_cmd_sweep)

    swkr = sub.add_parser(
        "sweep-worker",
        help="attach one shard worker to a sweep coordinator directory",
    )
    swkr.add_argument(
        "--coordinator",
        required=True,
        metavar="DIR",
        help="the coordinator directory a `sweep --shards` driver owns "
        "(workers may start first; see --wait-manifest)",
    )
    swkr.add_argument(
        "--worker",
        default="",
        metavar="ID",
        help="worker identifier, the journal/memo filename stem "
        "(default: worker-<pid>)",
    )
    swkr.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="idle-scan sleep while other workers hold all remaining leases",
    )
    swkr.add_argument(
        "--wait-manifest",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to wait for the driver to write the manifest",
    )
    add_output_opts(swkr)
    swkr.set_defaults(func=_cmd_sweep_worker)

    fig = sub.add_parser("fig8", help="print the paper's Figure 8")
    fig.add_argument(
        "--mus", default="1,2,4,8,16,32,64,100", help="comma-separated mu grid"
    )
    fig.add_argument("--width", type=int, default=70)
    fig.set_defaults(func=_cmd_fig8)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
